//! Architecture configurations (§III-D): the evaluated LP and ULP variants
//! plus a general parameterisation of the compute-engine hierarchy.

use crate::dram::DramInterface;
use crate::ArchError;

/// Parameters of an ACOUSTIC accelerator instance.
///
/// Hierarchy (Fig. 3): a MAC unit is a 96:1 AND/OR multiply-accumulate;
/// `macs_per_array` (M) MACs with shared weights form an array;
/// `arrays_per_subrow` (A) arrays form a sub-row sharing one activation
/// scratchpad; `subrows_per_row` (S = 3) sub-rows form a row computing one
/// kernel; `rows` (R) rows compute kernels in parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Configuration name (`"LP"` / `"ULP"` for the paper's variants).
    pub name: String,
    /// Kernel rows computed in parallel (R).
    pub rows: usize,
    /// Sub-rows per row (S; 3 in the paper, matching 3×3 kernels).
    pub subrows_per_row: usize,
    /// MAC arrays per sub-row (A).
    pub arrays_per_subrow: usize,
    /// MAC units per array (M).
    pub macs_per_array: usize,
    /// Products accumulated by one MAC unit's OR tree (96 in the paper).
    pub mac_width: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// On-chip weight memory in bytes (LP: 147.5 KB).
    pub weight_mem_bytes: u64,
    /// On-chip activation memory in bytes (LP: 600 KB, three scratchpads).
    pub act_mem_bytes: u64,
    /// Instruction memory in bytes.
    pub inst_mem_bytes: u64,
    /// External memory interface; `None` is rejected — DRAM-less variants
    /// use [`DramInterface::HostLink`].
    pub dram: DramInterface,
    /// Total split-unipolar stream length per MAC pass (e.g. 256 = 128×2).
    pub stream_len: usize,
    /// Effective MAC-lane utilisation for fully-connected layers
    /// (§III-B: one MAC per array usable ⇒ 12.5 %, i.e. 87.5 %
    /// under-utilisation).
    pub fc_utilization: f64,
    /// Inference batch size. Batching reuses each loaded weight chunk
    /// across `batch_size` frames, amortising FC weight streaming (§III-D:
    /// "activation memory can be sized up to support larger batch sizes if
    /// desired"). The paper's headline numbers use batch size 1.
    pub batch_size: usize,
}

impl ArchConfig {
    /// The low-power (LP) variant of Table III: 12 mm² / 0.35 W @ 200 MHz,
    /// 147.5 KB weight and 600 KB activation memory, DDR3-class DRAM.
    pub fn lp() -> Self {
        ArchConfig {
            name: "LP".to_string(),
            rows: 32,
            subrows_per_row: 3,
            arrays_per_subrow: 8,
            macs_per_array: 16,
            mac_width: 96,
            clock_hz: 200e6,
            weight_mem_bytes: (147.5 * 1024.0) as u64,
            act_mem_bytes: 600 * 1024,
            inst_mem_bytes: 16 * 1024,
            dram: DramInterface::Ddr3_2133,
            stream_len: 256,
            fc_utilization: 0.125,
            batch_size: 1,
        }
    }

    /// The ultra-low-power (ULP) variant of Table IV: ~0.18 mm² / 3 mW,
    /// 3 KB weight and 2 KB activation memory, no DRAM (weights stream over
    /// a slow host link when they do not fit on-chip).
    pub fn ulp() -> Self {
        ArchConfig {
            name: "ULP".to_string(),
            rows: 4,
            subrows_per_row: 3,
            arrays_per_subrow: 1,
            macs_per_array: 16,
            mac_width: 96,
            clock_hz: 200e6,
            weight_mem_bytes: 3 * 1024,
            act_mem_bytes: 2 * 1024,
            inst_mem_bytes: 2 * 1024,
            dram: DramInterface::HostLink,
            stream_len: 128,
            fc_utilization: 0.125,
            batch_size: 1,
        }
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] for zero-sized dimensions, an
    /// odd stream length, or an FC utilisation outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.rows == 0
            || self.subrows_per_row == 0
            || self.arrays_per_subrow == 0
            || self.macs_per_array == 0
            || self.mac_width == 0
        {
            return Err(ArchError::InvalidConfig(
                "all hierarchy dimensions must be positive".into(),
            ));
        }
        if self.stream_len == 0 || !self.stream_len.is_multiple_of(2) {
            return Err(ArchError::InvalidConfig(format!(
                "stream length {} must be positive and even",
                self.stream_len
            )));
        }
        if !(self.fc_utilization > 0.0 && self.fc_utilization <= 1.0) {
            return Err(ArchError::InvalidConfig(format!(
                "fc utilisation {} outside (0, 1]",
                self.fc_utilization
            )));
        }
        if self.clock_hz <= 0.0 {
            return Err(ArchError::InvalidConfig("clock must be positive".into()));
        }
        if self.batch_size == 0 {
            return Err(ArchError::InvalidConfig(
                "batch size must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// Total 96:1 MAC units.
    pub fn mac_units(&self) -> usize {
        self.rows * self.subrows_per_row * self.arrays_per_subrow * self.macs_per_array
    }

    /// Total multiplier lanes (`mac_units × mac_width`).
    pub fn total_lanes(&self) -> usize {
        self.mac_units() * self.mac_width
    }

    /// Output positions computed per pass per kernel (A × M).
    pub fn positions_per_pass(&self) -> usize {
        self.arrays_per_subrow * self.macs_per_array
    }

    /// Fan-in lanes available to one kernel per pass (S × mac_width).
    pub fn fan_in_per_pass(&self) -> usize {
        self.subrows_per_row * self.mac_width
    }

    /// Output counters (one per concurrently-computed output position).
    pub fn counter_count(&self) -> usize {
        self.rows * self.positions_per_pass()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_matches_paper_hierarchy() {
        let lp = ArchConfig::lp();
        lp.validate().unwrap();
        // Fig. 3: 16 × 8 × 3 × 32 MACs of width 96.
        assert_eq!(lp.mac_units(), 12_288);
        assert_eq!(lp.total_lanes(), 1_179_648);
        assert_eq!(lp.positions_per_pass(), 128);
        assert_eq!(lp.fan_in_per_pass(), 288);
        // §III-B: "32 kernels can be computed in parallel".
        assert_eq!(lp.rows, 32);
    }

    #[test]
    fn ulp_is_much_smaller_than_lp() {
        let (lp, ulp) = (ArchConfig::lp(), ArchConfig::ulp());
        ulp.validate().unwrap();
        assert!(ulp.total_lanes() * 10 < lp.total_lanes());
        assert!(ulp.weight_mem_bytes < lp.weight_mem_bytes / 10);
        assert_eq!(ulp.dram, DramInterface::HostLink);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ArchConfig::lp();
        c.rows = 0;
        assert!(c.validate().is_err());
        let mut c = ArchConfig::lp();
        c.stream_len = 255;
        assert!(c.validate().is_err());
        let mut c = ArchConfig::lp();
        c.fc_utilization = 0.0;
        assert!(c.validate().is_err());
        let mut c = ArchConfig::lp();
        c.clock_hz = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn counters_match_parallel_outputs() {
        let lp = ArchConfig::lp();
        assert_eq!(lp.counter_count(), 32 * 128);
    }
}

impl ArchConfig {
    /// Bits required by an output counter: it must hold the worst-case
    /// magnitude accumulated over one output's full computation — every
    /// cycle of every fan-in pass can add ±1, so the range is
    /// `±(fan_in_passes × per-phase cycles)` plus a sign bit. The LP default
    /// (256-long streams, up to 16 fan-in passes for 3×3×512 kernels) needs
    /// 12 bits; the area model budgets 16-bit counters.
    pub fn counter_bits(&self, fan_in_passes: usize) -> u32 {
        let max_count = (fan_in_passes.max(1) as u64) * (self.stream_len as u64 / 2);
        // ceil(log2(max_count + 1)) magnitude bits + 1 sign bit.
        (u64::BITS - max_count.leading_zeros()) + 1
    }
}

#[cfg(test)]
mod counter_bits_tests {
    use super::*;

    #[test]
    fn lp_counters_fit_sixteen_bits() {
        let lp = ArchConfig::lp();
        // Deepest Table III accumulation: 3x3x512 kernel = 16 fan-in passes.
        let bits = lp.counter_bits(16);
        assert!(bits <= 16, "LP counters need {bits} bits");
        assert!(bits >= 11, "suspiciously small: {bits}");
    }

    #[test]
    fn counter_bits_grow_with_depth_and_stream() {
        let lp = ArchConfig::lp();
        assert!(lp.counter_bits(16) > lp.counter_bits(1));
        let mut long = ArchConfig::lp();
        long.stream_len = 1024;
        assert!(long.counter_bits(16) > lp.counter_bits(16));
    }

    #[test]
    fn single_pass_counter_is_compact() {
        let ulp = ArchConfig::ulp();
        // 128-long streams, one pass: ±64 fits in 8 bits comfortably.
        assert!(ulp.counter_bits(1) <= 8);
    }
}
