//! Non-blocking cold resolve: a request for a model whose prepared banks
//! were evicted must get a typed `Warming` reply immediately while a
//! single background thread recompiles it — request workers never stall
//! on stream generation, so warm-model traffic keeps completing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use acoustic_core::DetRng;
use acoustic_nn::layers::{AccumMode, AvgPool2d, Conv2d, Dense, Network, Relu};
use acoustic_nn::Tensor;
use acoustic_runtime::ModelCache;
use acoustic_serve::protocol::{ErrorCode, Frame, InferRequest, StatsSnapshot};
use acoustic_serve::{Client, ModelRegistry, ModelSpec, ServeConfig, Server};
use acoustic_simfunc::SimConfig;

const FAST_ID: u32 = 1;
const HEAVY_ID: u32 = 2;

fn fast_network() -> Network {
    let mut net = Network::new();
    net.push_conv(Conv2d::new(1, 2, 3, 1, 1, AccumMode::OrApprox).unwrap());
    net.push_avg_pool(AvgPool2d::new(2).unwrap());
    net.push_relu(Relu::clamped());
    net.push_flatten();
    net.push_dense(Dense::new(2 * 4 * 4, 4, AccumMode::OrApprox).unwrap());
    net
}

/// Big enough that a debug-build prepare takes a visible fraction of a
/// second (dense 1024×32 weight lanes at stream 2048), small enough that
/// the suite stays fast.
fn heavy_network() -> Network {
    let mut net = Network::new();
    net.push_conv(Conv2d::new(1, 4, 3, 1, 1, AccumMode::OrApprox).unwrap());
    net.push_relu(Relu::clamped());
    net.push_flatten();
    net.push_dense(Dense::new(4 * 16 * 16, 32, AccumMode::OrApprox).unwrap());
    net
}

fn image(side: usize) -> Tensor {
    let mut rng = DetRng::seed_from_u64(7);
    let vals: Vec<f32> = (0..side * side).map(|_| rng.next_f32()).collect();
    Tensor::from_vec(&[1, side, side], vals).unwrap()
}

fn request(id: u64, model_id: u32, img: &Tensor) -> InferRequest {
    InferRequest {
        request_id: id,
        model_id,
        deadline_micros: 0,
        stream_len: None,
        margin: None,
        shape: img.shape().iter().map(|&d| d as u32).collect(),
        values: img.as_slice().to_vec(),
    }
}

fn drain_accounted(stats: &StatsSnapshot) -> u64 {
    stats.completed
        + stats.rejected_overload
        + stats.rejected_model_budget
        + stats.rejected_unknown_model
        + stats.rejected_shutdown
        + stats.rejected_warming
        + stats.expired
        + stats.failed
}

#[test]
fn cold_model_warms_in_background_while_warm_traffic_flows() {
    let fast_cfg = SimConfig::with_stream_len(64).unwrap();
    let heavy_cfg = SimConfig::with_stream_len(2048).unwrap();
    let cache = Arc::new(ModelCache::new());
    let registry = ModelRegistry::build(
        vec![
            ModelSpec {
                id: FAST_ID,
                network: fast_network(),
                cfg: fast_cfg,
            },
            ModelSpec {
                id: HEAVY_ID,
                network: heavy_network(),
                cfg: heavy_cfg,
            },
        ],
        &cache,
    )
    .unwrap();
    // Evict everything, then re-warm only the fast model: the heavy model
    // starts cold, exactly as after a budgeted-cache eviction.
    cache.clear();
    registry.resolve(FAST_ID).unwrap();
    let prepares_before = cache.prepare_stats().prepares_completed;
    assert_eq!(prepares_before, 3, "2 warm-ups + 1 re-warm");

    let handle = Server::start(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            workers: 1,
            default_deadline: Duration::from_secs(60),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let fast_img = image(8);
    let heavy_img = image(16);
    let mut client = Client::connect(handle.addr()).unwrap();
    let started = Instant::now();

    // Two back-to-back cold requests: both must bounce with `Warming`
    // immediately (single-flight — the second must not enqueue a second
    // compile), and a warm request sent *behind* them on the same
    // connection must complete while the heavy prepare is still running.
    client
        .send(&Frame::InferRequest(request(0, HEAVY_ID, &heavy_img)))
        .unwrap();
    client
        .send(&Frame::InferRequest(request(1, HEAVY_ID, &heavy_img)))
        .unwrap();
    client
        .send(&Frame::InferRequest(request(2, FAST_ID, &fast_img)))
        .unwrap();
    for expect in [0u64, 1] {
        match client.recv().unwrap() {
            Frame::Error(e) => {
                assert_eq!(e.request_id, expect);
                assert_eq!(e.code, ErrorCode::Warming, "{}", e.message);
            }
            other => panic!("expected Warming, got {other:?}"),
        }
    }
    let warm_reply_at = match client.recv().unwrap() {
        Frame::InferResponse(r) => {
            assert_eq!(r.request_id, 2);
            started.elapsed()
        }
        other => panic!("expected fast-model response, got {other:?}"),
    };

    // Retry the heavy model until the background prepare lands. Every
    // intermediate reply must be a typed `Warming` error, never a stall.
    let mut retries = 0u64;
    let heavy_done_at = loop {
        client
            .send(&Frame::InferRequest(request(
                100 + retries,
                HEAVY_ID,
                &heavy_img,
            )))
            .unwrap();
        match client.recv().unwrap() {
            Frame::InferResponse(r) => {
                assert_eq!(r.request_id, 100 + retries);
                break started.elapsed();
            }
            Frame::Error(e) if e.code == ErrorCode::Warming => {
                retries += 1;
                assert!(retries < 10_000, "heavy model never warmed");
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    };
    assert!(
        warm_reply_at < heavy_done_at,
        "warm traffic must be answered while the prepare is in flight \
         ({warm_reply_at:?} vs {heavy_done_at:?})"
    );

    let stats = handle.shutdown();
    assert_eq!(drain_accounted(&stats), stats.received, "{stats:?}");
    assert!(stats.rejected_warming >= 2, "{stats:?}");
    assert_eq!(stats.expired, 0, "no deadline expiries: {stats:?}");
    // Single-flight: the burst of cold requests produced exactly one
    // background compile.
    assert_eq!(stats.prepares_completed, prepares_before + 1, "{stats:?}");
    assert!(stats.prepare_ms_total > 0, "{stats:?}");
    assert_eq!(stats.prepares_in_flight, 0, "{stats:?}");
}
