//! Wire-protocol coverage: every frame type round-trips bit-exactly, and
//! every class of malformed input is rejected with a typed `WireError`
//! (never a panic) with the right recoverability.

use acoustic_serve::protocol::{
    encode_frame, read_frame, ErrorCode, ErrorFrame, Frame, InferRequest, InferResponse,
    StatsSnapshot, WireError, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
};

fn roundtrip(frame: &Frame) -> Frame {
    let bytes = encode_frame(frame);
    read_frame(&mut &bytes[..], DEFAULT_MAX_PAYLOAD).expect("frame round-trips")
}

fn sample_request() -> InferRequest {
    InferRequest {
        request_id: 0xDEAD_BEEF_0042,
        model_id: 7,
        deadline_micros: 125_000,
        stream_len: None,
        margin: None,
        shape: vec![1, 4, 4],
        values: (0..16).map(|i| i as f32 * 0.0625 - 0.5).collect(),
    }
}

#[test]
fn infer_request_roundtrips() {
    let plain = Frame::InferRequest(sample_request());
    assert_eq!(roundtrip(&plain), plain);

    let with_len = Frame::InferRequest(InferRequest {
        stream_len: Some(256),
        ..sample_request()
    });
    assert_eq!(roundtrip(&with_len), with_len);

    let with_margin = Frame::InferRequest(InferRequest {
        margin: Some(1.25),
        ..sample_request()
    });
    assert_eq!(roundtrip(&with_margin), with_margin);
}

#[test]
fn infer_response_roundtrips() {
    let f = Frame::InferResponse(InferResponse {
        request_id: 3,
        effective_len: 128,
        logits: vec![-0.5, 0.0, 1.5, f32::MIN_POSITIVE],
    });
    assert_eq!(roundtrip(&f), f);
}

#[test]
fn error_frame_roundtrips_every_code() {
    for code in [
        ErrorCode::Malformed,
        ErrorCode::Overloaded,
        ErrorCode::DeadlineExceeded,
        ErrorCode::UnknownModel,
        ErrorCode::BadInput,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
        ErrorCode::Warming,
    ] {
        let f = Frame::Error(ErrorFrame {
            request_id: 9,
            code,
            message: format!("{code} happened"),
        });
        assert_eq!(roundtrip(&f), f);
    }
}

#[test]
fn stats_frames_roundtrip() {
    let req = Frame::StatsRequest(55);
    assert_eq!(roundtrip(&req), req);

    let snap = StatsSnapshot {
        received: 1,
        accepted: 2,
        completed: 3,
        rejected_overload: 4,
        rejected_malformed: 5,
        rejected_unknown_model: 6,
        expired: 7,
        failed: 8,
        queue_depth_hwm: 9,
        queue_wait_ns: 10,
        service_ns: 11,
        batches: 12,
        batch_requests: 13,
        mac_lanes: 14,
        sat_group_exits: 15,
        sat_lanes_skipped: 16,
        zero_seg_skips: 17,
        tiles: 18,
        tiled_requests: 19,
        rejected_model_budget: 20,
        distinct_streams: 21,
        pool_bytes: 22,
        index_bytes: 23,
        materialized_bytes: 24,
        resident_bytes: 25,
        plan_kernel: 3,
        plan_tile: 32,
        rejected_shutdown: 33,
        shards: 34,
        shard_depth_hwm: 35,
        queue_steals: 36,
        active_connections: 37,
        active_connections_hwm: 40,
        conns_opened: 38,
        idle_reaped: 39,
        reactor_mode: 1,
        rejected_warming: 41,
        prepares_completed: 42,
        prepare_ms_total: 43,
        prepares_in_flight: 44,
    };
    let resp = Frame::StatsResponse(55, snap);
    assert_eq!(roundtrip(&resp), resp);
}

#[test]
fn logit_bits_survive_the_wire() {
    // Golden-response validation compares f32 bit patterns, so encoding
    // must not normalize anything (signed zero, subnormals, infinities).
    let tricky = vec![-0.0_f32, f32::INFINITY, f32::NEG_INFINITY, 1e-40];
    let f = Frame::InferResponse(InferResponse {
        request_id: 1,
        effective_len: 64,
        logits: tricky.clone(),
    });
    match roundtrip(&f) {
        Frame::InferResponse(r) => {
            for (a, b) in tricky.iter().zip(&r.logits) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        other => panic!("unexpected {other:?}"),
    }
}

// --- malformed input -------------------------------------------------------

fn expect_malformed(bytes: &[u8]) -> (u64, bool, String) {
    match read_frame(&mut &bytes[..], DEFAULT_MAX_PAYLOAD) {
        Err(WireError::Malformed {
            request_id,
            recoverable,
            reason,
        }) => (request_id, recoverable, reason),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_non_recoverable() {
    let mut bytes = encode_frame(&Frame::StatsRequest(1));
    bytes[0] ^= 0xFF;
    let (_, recoverable, reason) = expect_malformed(&bytes);
    assert!(!recoverable);
    assert!(reason.contains("magic"), "{reason}");
}

#[test]
fn bad_version_is_non_recoverable() {
    let mut bytes = encode_frame(&Frame::StatsRequest(1));
    bytes[4] = 99;
    let (_, recoverable, reason) = expect_malformed(&bytes);
    assert!(!recoverable);
    assert!(reason.contains("version"), "{reason}");
}

#[test]
fn reserved_bytes_must_be_zero() {
    let mut bytes = encode_frame(&Frame::StatsRequest(42));
    bytes[6] = 1;
    let (id, recoverable, _) = expect_malformed(&bytes);
    assert!(!recoverable);
    // The id was parsed before the reserved check, so it can be echoed.
    assert_eq!(id, 42);
}

#[test]
fn oversized_payload_is_rejected_before_allocation() {
    let mut bytes = encode_frame(&Frame::StatsRequest(7));
    bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    let (id, recoverable, reason) = expect_malformed(&bytes);
    assert_eq!(id, 7);
    assert!(!recoverable);
    assert!(reason.contains("cap"), "{reason}");
}

#[test]
fn unknown_frame_type_is_recoverable() {
    let mut bytes = encode_frame(&Frame::StatsRequest(5));
    bytes[5] = 200;
    let (id, recoverable, reason) = expect_malformed(&bytes);
    assert_eq!(id, 5);
    assert!(recoverable);
    assert!(reason.contains("unknown frame type"), "{reason}");
}

#[test]
fn truncated_stream_is_an_io_error() {
    let bytes = encode_frame(&Frame::InferRequest(sample_request()));
    // Cut mid-header and mid-payload: both are transport-level EOF.
    for cut in [HEADER_LEN / 2, HEADER_LEN + 3] {
        match read_frame(&mut &bytes[..cut], DEFAULT_MAX_PAYLOAD) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }
}

#[test]
fn truncated_payload_with_consistent_header_is_recoverable() {
    // Header says 4 bytes, payload delivers 4 bytes of garbage for an
    // infer request — well-delimited, so the stream stays aligned.
    let mut bytes = encode_frame(&Frame::StatsRequest(8));
    bytes[5] = 1; // retype as InferRequest
    bytes[16..20].copy_from_slice(&4u32.to_le_bytes());
    bytes.extend_from_slice(&[1, 2, 3, 4]);
    let (id, recoverable, reason) = expect_malformed(&bytes);
    assert_eq!(id, 8);
    assert!(recoverable);
    assert!(reason.contains("truncated"), "{reason}");
}

#[test]
fn garbage_bytes_never_panic() {
    // Deterministic pseudo-garbage: decode must return, never panic.
    let mut state = 0x1234_5678_9ABC_DEF0_u64;
    for len in [0usize, 1, 7, HEADER_LEN, HEADER_LEN + 1, 64, 333] {
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            bytes.push((state >> 56) as u8);
        }
        let _ = read_frame(&mut &bytes[..], DEFAULT_MAX_PAYLOAD);
    }
}

#[test]
fn mutually_exclusive_overrides_rejected() {
    let mut req = sample_request();
    req.stream_len = Some(128);
    let mut bytes = encode_frame(&Frame::InferRequest(req));
    // Patch the margin word (payload offset 12) to a non-negative float.
    let off = HEADER_LEN + 12;
    bytes[off..off + 4].copy_from_slice(&1.0_f32.to_le_bytes());
    let (_, recoverable, reason) = expect_malformed(&bytes);
    assert!(recoverable);
    assert!(reason.contains("at most one"), "{reason}");
}

#[test]
fn nan_margin_rejected() {
    let mut bytes = encode_frame(&Frame::InferRequest(sample_request()));
    let off = HEADER_LEN + 12;
    bytes[off..off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
    let (_, recoverable, reason) = expect_malformed(&bytes);
    assert!(recoverable);
    assert!(reason.contains("NaN"), "{reason}");
}

#[test]
fn shape_violations_rejected() {
    // Rank 0.
    let mut req = sample_request();
    req.shape.clear();
    req.values.clear();
    let bytes = encode_frame(&Frame::InferRequest(req));
    let (_, _, reason) = expect_malformed(&bytes);
    assert!(reason.contains("rank"), "{reason}");

    // Value count != shape product.
    let mut req = sample_request();
    req.values.pop();
    let bytes = encode_frame(&Frame::InferRequest(req));
    let (_, recoverable, reason) = expect_malformed(&bytes);
    assert!(recoverable);
    assert!(reason.contains("does not match"), "{reason}");
}

#[test]
fn stats_request_with_payload_rejected() {
    let mut bytes = encode_frame(&Frame::StatsRequest(3));
    bytes[16..20].copy_from_slice(&2u32.to_le_bytes());
    bytes.extend_from_slice(&[0, 0]);
    let (id, recoverable, _) = expect_malformed(&bytes);
    assert_eq!(id, 3);
    assert!(recoverable);
}

#[test]
fn unknown_error_code_rejected() {
    let mut bytes = encode_frame(&Frame::Error(ErrorFrame {
        request_id: 2,
        code: ErrorCode::Internal,
        message: "m".into(),
    }));
    bytes[HEADER_LEN] = 250;
    let (_, recoverable, reason) = expect_malformed(&bytes);
    assert!(recoverable);
    assert!(reason.contains("error code"), "{reason}");
}

#[test]
fn trailing_payload_bytes_rejected() {
    let mut bytes = encode_frame(&Frame::InferRequest(sample_request()));
    let new_len = (bytes.len() - HEADER_LEN + 2) as u32;
    bytes[16..20].copy_from_slice(&new_len.to_le_bytes());
    bytes.extend_from_slice(&[0, 0]);
    let (_, recoverable, reason) = expect_malformed(&bytes);
    assert!(recoverable);
    assert!(reason.contains("trailing"), "{reason}");
}
