//! Zoo-wide bit-exactness of the deduplicated weight-stream pool.
//!
//! Weight streams are pure functions of their `(mixed seed, quantized
//! threshold)` key, so replacing per-lane materialized banks with a shared
//! stream pool must not change a single logit bit. This suite enforces
//! that on every trainable zoo model with its real dataset shapes; the
//! ImageNet-scale prepare-only descriptors are covered structurally by
//! `zoo_registry::imagenet_scale_builtin_zoo_resolves_evicts_and_recompiles`
//! (their forward pass is intentionally out of scope).

use acoustic_simfunc::{ScSimulator, SimConfig, WeightStorage};
use acoustic_train::ZooModel;

#[test]
fn pooled_logits_are_bit_identical_on_every_trainable_zoo_model() {
    for model in ZooModel::TRAINABLE {
        let net = model.network().unwrap();
        let kind = model.data_kind().expect("trainable models have datasets");
        let images: Vec<_> = kind
            .generate(0, 3, 17)
            .test
            .into_iter()
            .map(|(t, _)| t)
            .collect();

        let base = SimConfig::with_stream_len(64).unwrap();
        let pooled_sim = ScSimulator::new(SimConfig {
            weight_storage: WeightStorage::Pooled,
            ..base
        });
        let mat_sim = ScSimulator::new(SimConfig {
            weight_storage: WeightStorage::Materialized,
            ..base
        });
        let pooled = pooled_sim.prepare(&net).unwrap();
        let materialized = mat_sim.prepare(&net).unwrap();
        assert!(
            pooled.dedup_stats().resident_bytes <= materialized.dedup_stats().resident_bytes,
            "{}: pooling never costs more than materializing",
            model.slug()
        );

        for (i, x) in images.iter().enumerate() {
            let a = pooled_sim.run_prepared(&pooled, x).unwrap();
            let b = mat_sim.run_prepared(&materialized, x).unwrap();
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "{}: pooled vs materialized logits diverged at image {i}",
                model.slug()
            );
        }
    }
}
