//! Registry ↔ zoo integration: manifests written by acoustic-train load
//! into the serving registry, missing artifacts surface as typed errors,
//! and a cache memory budget evicts cold models without unregistering
//! them.

use std::path::PathBuf;
use std::sync::Arc;

use acoustic_nn::layers::{AccumMode, AvgPool2d, Conv2d, Dense, Network, Relu};
use acoustic_runtime::ModelCache;
use acoustic_serve::{ModelRegistry, ModelSpec, RegistryError};
use acoustic_simfunc::SimConfig;
use acoustic_train::{
    add_builtin_models, save_zoo, train_model, PipelineConfig, TrainError, ZooEntry, ZooModel,
};

/// A fresh per-test temp dir (tests run concurrently in one process).
fn temp_zoo(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acoustic-serve-zoo-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Trains LeNet-5 at toy scale and writes a one-model zoo directory.
fn tiny_zoo(tag: &str, stream_len: usize) -> (PathBuf, Network) {
    let cfg = PipelineConfig {
        producers: 2,
        channel_capacity: 2,
        batch_size: 6,
        steps: 2,
        val_size: 6,
        seed: 29,
    };
    let outcome = train_model(ZooModel::Lenet5, &cfg).unwrap();
    let entry = ZooEntry::from_outcome(ZooModel::Lenet5, &cfg, stream_len, &outcome);
    let dir = temp_zoo(tag);
    save_zoo(&dir, &[(entry, &outcome.network)]).unwrap();
    (dir, outcome.network)
}

#[test]
fn registry_loads_models_from_zoo_manifest() {
    let (dir, trained) = tiny_zoo("load", 32);
    let cache = Arc::new(ModelCache::new());
    let reg = ModelRegistry::from_zoo_dir(&dir, &cache).unwrap();

    assert_eq!(reg.ids(), vec![ZooModel::Lenet5.id()]);
    let cfg = reg.sim_config(ZooModel::Lenet5.id()).unwrap();
    assert_eq!(cfg.stream_len, 32, "stream length comes from the manifest");

    // The checkpoint round-tripped bit-exactly: the prepared model keys
    // identically to the network we trained, and it is warm in the cache.
    let prepared = reg.resolve(ZooModel::Lenet5.id()).unwrap();
    let golden = acoustic_runtime::PreparedModel::compile(cfg, &trained).unwrap();
    assert_eq!(prepared.fingerprint(), golden.fingerprint());
    assert_eq!(cache.len(), 1);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_checkpoint_artifact_is_a_typed_error() {
    let (dir, _) = tiny_zoo("missing", 32);
    std::fs::remove_file(dir.join("lenet5.net")).unwrap();

    let cache = Arc::new(ModelCache::new());
    match ModelRegistry::from_zoo_dir(&dir, &cache) {
        Err(RegistryError::Zoo(TrainError::MissingArtifact(path))) => {
            assert!(path.ends_with("lenet5.net"), "{path}");
        }
        other => panic!("expected MissingArtifact, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Two structurally different tiny CNNs with distinct fingerprints.
fn tiny_net(dense_out: usize) -> Network {
    let mut net = Network::new();
    net.push_conv(Conv2d::new(1, 2, 3, 1, 1, AccumMode::OrApprox).unwrap());
    net.push_avg_pool(AvgPool2d::new(2).unwrap());
    net.push_relu(Relu::clamped());
    net.push_flatten();
    net.push_dense(Dense::new(2 * 4 * 4, dense_out, AccumMode::OrApprox).unwrap());
    net
}

#[test]
fn memory_budget_evicts_lru_and_registry_recompiles() {
    let sim = SimConfig::with_stream_len(64).unwrap();
    let (a, b) = (tiny_net(4), tiny_net(6));
    assert_ne!(a.fingerprint(), b.fingerprint());

    // Measure one prepared model so the budget can hold one but not two,
    // and capture both cache keys for the eviction counters.
    let probe = Arc::new(ModelCache::new());
    let fp_a = probe.get_or_compile(sim, &a).unwrap().fingerprint();
    let one = probe.resident_bytes();
    assert!(one > 0);
    let fp_b = probe.get_or_compile(sim, &b).unwrap().fingerprint();
    assert_ne!(fp_a, fp_b);

    let cache = Arc::new(ModelCache::with_limits(8, Some(one + one / 2)).unwrap());
    let reg = ModelRegistry::build(
        vec![
            ModelSpec {
                id: 1,
                network: a.clone(),
                cfg: sim,
            },
            ModelSpec {
                id: 2,
                network: b.clone(),
                cfg: sim,
            },
        ],
        &cache,
    )
    .unwrap();

    // Warming model 2 evicted model 1 (LRU under the byte budget)…
    assert_eq!(cache.len(), 1);
    assert_eq!(cache.evictions(), 1);
    assert_eq!(cache.evictions_of(fp_a), 1);

    // …but model 1 is still registered: resolve recompiles it, which in
    // turn evicts model 2. Identity churns, fingerprints never do.
    let cold = reg.resolve(1).unwrap();
    assert_eq!(cold.fingerprint(), fp_a);
    assert_eq!(cache.evictions(), 2);
    assert_eq!(cache.evictions_of(fp_b), 1);
    assert!(cache.resident_bytes() <= one + one / 2);

    let back = reg.resolve(2).unwrap();
    assert_eq!(back.fingerprint(), fp_b);
    assert_eq!(cache.evictions(), 3);
}

#[test]
fn builtin_manifest_entries_load_through_the_registry() {
    // A zoo directory holding only a `file builtin` entry: no weight file
    // on disk, the registry rebuilds the deterministic constructor network
    // at load time. LeNet keeps the always-run test cheap; the ignored
    // test below exercises the same path at ImageNet scale.
    let dir = temp_zoo("builtin");
    add_builtin_models(&dir, &[(ZooModel::Lenet5, 32)]).unwrap();

    let cache = Arc::new(ModelCache::new());
    let reg = ModelRegistry::from_zoo_dir(&dir, &cache).unwrap();
    assert_eq!(reg.ids(), vec![ZooModel::Lenet5.id()]);

    let prepared = reg.resolve(ZooModel::Lenet5.id()).unwrap();
    let golden = acoustic_runtime::PreparedModel::compile(
        SimConfig::with_stream_len(32).unwrap(),
        &ZooModel::Lenet5.network().unwrap(),
    )
    .unwrap();
    assert_eq!(prepared.fingerprint(), golden.fingerprint());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
#[ignore = "prepares ImageNet-scale models (GBs of bank memory, minutes in release); run with --ignored"]
fn imagenet_scale_builtin_zoo_resolves_evicts_and_recompiles() {
    let dir = temp_zoo("imagenet");
    add_builtin_models(&dir, &[(ZooModel::Alexnet, 32), (ZooModel::Vgg16, 32)]).unwrap();

    // Budget sized to hold either model alone but never both: AlexNet's
    // pooled banks are a few hundred MB at stream 32, VGG-16's under a
    // GB — so warming VGG during registration must evict AlexNet, and
    // resolving AlexNet again must recompile it and evict VGG.
    let budget = 1_200_000_000;
    let cache = Arc::new(ModelCache::with_limits(8, Some(budget)).unwrap());
    let reg = ModelRegistry::from_zoo_dir(&dir, &cache).unwrap();

    assert_eq!(cache.len(), 1, "budget holds only one resident model");
    assert_eq!(cache.evictions(), 1);
    assert!(cache.resident_bytes() <= budget);

    let alex = reg.resolve(ZooModel::Alexnet.id()).unwrap();
    let stats = alex.dedup_stats();
    assert!(
        stats.dedup_ratio() >= 5.0,
        "AlexNet dedup ratio {:.2} below the 5x bar",
        stats.dedup_ratio()
    );
    assert_eq!(cache.evictions(), 2, "recompiling AlexNet evicted VGG-16");
    assert!(cache.resident_bytes() <= budget);

    let vgg = reg.resolve(ZooModel::Vgg16.id()).unwrap();
    let stats = vgg.dedup_stats();
    assert!(
        stats.dedup_ratio() >= 5.0,
        "VGG-16 dedup ratio {:.2} below the 5x bar",
        stats.dedup_ratio()
    );
    assert_eq!(cache.evictions(), 3);

    std::fs::remove_dir_all(&dir).unwrap();
}
