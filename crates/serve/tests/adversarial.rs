//! Adversarial-client tests: misbehaving peers must cost the server a
//! buffer, never a worker and never a shard.
//!
//! All three scenarios target the reactor path (they are exactly the
//! failure modes thread-per-connection I/O dodges by burning a thread per
//! client); each test no-ops on hosts without readiness support, where
//! the reactor is never selected.

use std::sync::Arc;
use std::time::{Duration, Instant};

use acoustic_core::DetRng;
use acoustic_nn::layers::{AccumMode, AvgPool2d, Conv2d, Dense, Network, Relu};
use acoustic_nn::Tensor;
use acoustic_runtime::ModelCache;
use acoustic_serve::protocol::{encode_frame, Frame, InferRequest};
use acoustic_serve::{
    Client, InferReply, IoModel, ModelRegistry, ModelSpec, ServeConfig, Server, ServerHandle,
};
use acoustic_simfunc::SimConfig;

const MODEL_ID: u32 = 1;

fn tiny_network() -> Network {
    let mut net = Network::new();
    net.push_conv(Conv2d::new(1, 2, 3, 1, 1, AccumMode::OrApprox).unwrap());
    net.push_avg_pool(AvgPool2d::new(2).unwrap());
    net.push_relu(Relu::clamped());
    net.push_flatten();
    net.push_dense(Dense::new(2 * 4 * 4, 4, AccumMode::OrApprox).unwrap());
    net
}

fn tiny_image() -> Tensor {
    let mut rng = DetRng::seed_from_u64(33);
    let vals: Vec<f32> = (0..64).map(|_| rng.next_f32()).collect();
    Tensor::from_vec(&[1, 8, 8], vals).unwrap()
}

fn start(cfg: ServeConfig) -> ServerHandle {
    let sim = SimConfig::with_stream_len(64).unwrap();
    let cache = Arc::new(ModelCache::new());
    let registry = ModelRegistry::build(
        vec![ModelSpec {
            id: MODEL_ID,
            network: tiny_network(),
            cfg: sim,
        }],
        &cache,
    )
    .unwrap();
    Server::start("127.0.0.1:0", registry, cfg).unwrap()
}

fn request(id: u64, img: &Tensor) -> InferRequest {
    InferRequest {
        request_id: id,
        model_id: MODEL_ID,
        deadline_micros: 0,
        stream_len: None,
        margin: None,
        shape: img.shape().iter().map(|&d| d as u32).collect(),
        values: img.as_slice().to_vec(),
    }
}

#[test]
fn slow_loris_header_dribble_does_not_stall_other_clients() {
    if !acoustic_net::Poller::supported() {
        return;
    }
    // ONE worker: if the dribbling client could capture anything beyond a
    // buffer, the victim request behind it would hang.
    let handle = start(ServeConfig {
        workers: 1,
        io: IoModel::Reactor,
        default_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    });
    let img = tiny_image();

    // The attacker trickles a valid request frame a few bytes at a time,
    // never completing the header in any one write.
    let mut loris = Client::connect(handle.addr()).unwrap();
    let frame = encode_frame(&Frame::InferRequest(request(7, &img)));
    loris.send_raw(&frame[..5]).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    loris.send_raw(&frame[5..11]).unwrap();

    // A well-behaved client must sail straight through meanwhile.
    let started = Instant::now();
    let mut victim = Client::connect(handle.addr()).unwrap();
    match victim.infer(request(1, &img)).unwrap() {
        InferReply::Ok(r) => assert_eq!(r.request_id, 1),
        InferReply::Err(e) => panic!("victim failed: {e:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "victim request stalled behind a header dribble"
    );

    // The dribbled request itself is still whole once the bytes arrive.
    loris.send_raw(&frame[11..]).unwrap();
    match loris.recv().unwrap() {
        Frame::InferResponse(r) => assert_eq!(r.request_id, 7),
        other => panic!("expected the dribbled request to complete, got {other:?}"),
    }

    let stats = handle.shutdown();
    assert_eq!(stats.completed, 2, "{stats:?}");
}

#[test]
fn idle_connections_are_reaped() {
    if !acoustic_net::Poller::supported() {
        return;
    }
    let handle = start(ServeConfig {
        io: IoModel::Reactor,
        idle_timeout: Some(Duration::from_millis(150)),
        ..ServeConfig::default()
    });
    let img = tiny_image();

    // Activity, then silence: the reactor must close the connection once
    // it has been quiet past the timeout with nothing outstanding.
    let mut idler = Client::connect(handle.addr()).unwrap();
    match idler.infer(request(0, &img)).unwrap() {
        InferReply::Ok(_) => {}
        InferReply::Err(e) => panic!("unexpected error {e:?}"),
    }
    idler
        .set_read_timeout(Some(Duration::from_millis(250)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let closed = loop {
        match idler.recv() {
            Ok(f) => panic!("unexpected frame on an idle connection: {f:?}"),
            // Timeout: still open, keep waiting (bounded).
            Err(acoustic_serve::ServeError::Wire(acoustic_serve::protocol::WireError::Io(e)))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    break false;
                }
            }
            // EOF / reset: the reactor closed us.
            Err(_) => break true,
        }
    };
    assert!(closed, "idle connection never reaped");

    // A fresh (non-idle) connection still works, and the reap was counted.
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.infer(request(1, &img)).unwrap() {
        InferReply::Ok(_) => {}
        InferReply::Err(e) => panic!("unexpected error {e:?}"),
    }
    let snap = client.stats(500).unwrap();
    assert!(snap.idle_reaped >= 1, "{snap:?}");
    handle.shutdown();
}

#[test]
fn mid_body_disconnects_free_slots_without_poisoning_shards() {
    if !acoustic_net::Poller::supported() {
        return;
    }
    let handle = start(ServeConfig {
        workers: 2,
        io: IoModel::Reactor,
        max_connections: 64,
        default_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    });
    let img = tiny_image();
    let frame = encode_frame(&Frame::InferRequest(request(5, &img)));

    // A wave of clients that each send the header plus half the body and
    // vanish. Each must be reaped, releasing its connection slot, and must
    // not leave its home shard (or any worker) wedged.
    for _ in 0..8 {
        let mut quitter = Client::connect(handle.addr()).unwrap();
        quitter.send_raw(&frame[..frame.len() / 2]).unwrap();
        drop(quitter); // RST/FIN mid-body
    }

    // The server keeps answering normal traffic on every shard.
    let mut client = Client::connect(handle.addr()).unwrap();
    for id in 0..6u64 {
        match client.infer(request(id, &img)).unwrap() {
            InferReply::Ok(r) => assert_eq!(r.request_id, id),
            InferReply::Err(e) => panic!("request {id} after disconnect wave: {e:?}"),
        }
    }

    // Every broken connection is eventually reaped: only our live client
    // should remain active.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = client.stats(999).unwrap();
        if snap.active_connections <= 1 {
            assert!(snap.conns_opened >= 9, "{snap:?}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnected clients never reaped: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    let stats = handle.shutdown();
    assert_eq!(stats.completed, 6, "{stats:?}");
}
