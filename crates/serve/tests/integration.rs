//! End-to-end server tests over real TCP sockets.
//!
//! Everything runs against a tiny 8×8 CNN so the suite stays fast in
//! debug builds; "slow" requests are made deterministically slow by
//! requesting a long stream-length prefix rather than by sleeping, which
//! keeps the overload/deadline scenarios reproducible on a 1-core host.

use std::sync::Arc;
use std::time::Duration;

use acoustic_core::DetRng;
use acoustic_nn::layers::{AccumMode, AvgPool2d, Conv2d, Dense, Network, Relu};
use acoustic_nn::Tensor;
use acoustic_runtime::{BatchEngine, ModelCache, PreparedModel, ReadyRequest};
use acoustic_serve::protocol::{ErrorCode, Frame, InferRequest, StatsSnapshot};
use acoustic_serve::{
    Client, InferReply, IoModel, ModelRegistry, ModelSpec, ServeConfig, Server, ServerHandle,
};
use acoustic_simfunc::SimConfig;

const MODEL_ID: u32 = 1;

fn tiny_network() -> Network {
    let mut net = Network::new();
    net.push_conv(Conv2d::new(1, 2, 3, 1, 1, AccumMode::OrApprox).unwrap());
    net.push_avg_pool(AvgPool2d::new(2).unwrap());
    net.push_relu(Relu::clamped());
    net.push_flatten();
    net.push_dense(Dense::new(2 * 4 * 4, 4, AccumMode::OrApprox).unwrap());
    net
}

fn tiny_images(n: usize) -> Vec<Tensor> {
    let mut rng = DetRng::seed_from_u64(33);
    (0..n)
        .map(|_| {
            let vals: Vec<f32> = (0..64).map(|_| rng.next_f32()).collect();
            Tensor::from_vec(&[1, 8, 8], vals).unwrap()
        })
        .collect()
}

/// Starts a server on an ephemeral port plus a locally prepared copy of
/// the same model for golden evaluation.
fn start(stream_len: usize, cfg: ServeConfig) -> (ServerHandle, Arc<PreparedModel>) {
    let sim = SimConfig::with_stream_len(stream_len).unwrap();
    let cache = Arc::new(ModelCache::new());
    let golden = cache.get_or_compile(sim, &tiny_network()).unwrap();
    let registry = ModelRegistry::build(
        vec![ModelSpec {
            id: MODEL_ID,
            network: tiny_network(),
            cfg: sim,
        }],
        &cache,
    )
    .unwrap();
    let handle = Server::start("127.0.0.1:0", registry, cfg).unwrap();
    (handle, golden)
}

/// Every way a received request can leave the server. The drain invariant
/// is `drain_accounted(stats) == stats.received` once all I/O has settled.
fn drain_accounted(stats: &StatsSnapshot) -> u64 {
    stats.completed
        + stats.rejected_overload
        + stats.rejected_model_budget
        + stats.rejected_unknown_model
        + stats.rejected_shutdown
        + stats.rejected_warming
        + stats.expired
        + stats.failed
}

fn request(id: u64, img: &Tensor) -> InferRequest {
    InferRequest {
        request_id: id,
        model_id: MODEL_ID,
        deadline_micros: 0,
        stream_len: None,
        margin: None,
        shape: img.shape().iter().map(|&d| d as u32).collect(),
        values: img.as_slice().to_vec(),
    }
}

#[test]
fn concurrent_clients_are_bit_identical_with_direct_engine() {
    let images = tiny_images(6);
    // Mixed request kinds: plain, stream-length override, margin override.
    let kinds: Vec<(Option<u32>, Option<f32>)> =
        vec![(None, None), (Some(64), None), (None, Some(0.8))];

    for workers in [1usize, 3] {
        let (handle, golden) = start(
            256,
            ServeConfig {
                workers,
                default_deadline: Duration::from_secs(30),
                ..ServeConfig::default()
            },
        );
        let addr = handle.addr();

        // 3 clients × 4 requests each, interleaved ids.
        let replies: Vec<(u64, InferReply)> = std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for c in 0..3u64 {
                let images = &images;
                let kinds = &kinds;
                joins.push(scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut got = Vec::new();
                    for k in 0..4u64 {
                        let id = c + 3 * k;
                        let (stream_len, margin) = kinds[(id % 3) as usize];
                        let req = InferRequest {
                            stream_len,
                            margin,
                            ..request(id, &images[(id % 6) as usize])
                        };
                        got.push((id, client.infer(req).unwrap()));
                    }
                    got
                }));
            }
            joins.into_iter().flat_map(|j| j.join().unwrap()).collect()
        });

        let stats = handle.shutdown();
        assert_eq!(stats.completed, 12, "workers={workers}: {stats:?}");
        assert_eq!(stats.received, 12);

        // Golden: the same 12 requests straight through run_ready.
        let engine = BatchEngine::new(1).unwrap();
        for (id, reply) in replies {
            let resp = match reply {
                InferReply::Ok(r) => r,
                InferReply::Err(e) => panic!("request {id} failed: {e:?}"),
            };
            let (stream_len, margin) = kinds[(id % 3) as usize];
            let ready = ReadyRequest {
                image_index: id,
                input: &images[(id % 6) as usize],
                stream_len: stream_len.map(|l| l as usize),
                margin,
            };
            let gold = engine
                .run_ready(&golden, &[ready])
                .unwrap()
                .remove(0)
                .unwrap();
            assert_eq!(gold.effective_len as u32, resp.effective_len, "id {id}");
            let gold_bits: Vec<u32> = gold.logits.as_slice().iter().map(|v| v.to_bits()).collect();
            let got_bits: Vec<u32> = resp.logits.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gold_bits, got_bits, "id {id} workers {workers}");
        }
    }
}

#[test]
fn malformed_frames_get_typed_errors_not_hangs() {
    let (handle, _golden) = start(64, ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let images = tiny_images(1);

    // Recoverable garbage: a well-delimited frame with an unknown type.
    let mut bytes = acoustic_serve::protocol::encode_frame(&Frame::StatsRequest(77));
    bytes[5] = 123;
    client.send_raw(&bytes).unwrap();
    match client.recv().unwrap() {
        Frame::Error(e) => {
            assert_eq!(e.code, ErrorCode::Malformed);
            assert_eq!(e.request_id, 77);
        }
        other => panic!("expected error frame, got {other:?}"),
    }

    // The connection survived: a valid request still completes.
    match client.infer(request(0, &images[0])).unwrap() {
        InferReply::Ok(r) => assert_eq!(r.request_id, 0),
        InferReply::Err(e) => panic!("unexpected error {e:?}"),
    }

    // Non-recoverable garbage (bad magic): one typed error, then the
    // server hangs up instead of guessing at frame alignment.
    let mut bytes = acoustic_serve::protocol::encode_frame(&Frame::StatsRequest(9));
    bytes[0] ^= 0xFF;
    client.send_raw(&bytes).unwrap();
    match client.recv().unwrap() {
        Frame::Error(e) => assert_eq!(e.code, ErrorCode::Malformed),
        other => panic!("expected error frame, got {other:?}"),
    }
    assert!(client.recv().is_err(), "server should close the connection");

    let stats = handle.shutdown();
    assert_eq!(stats.rejected_malformed, 2);
    assert_eq!(stats.completed, 1);
}

#[test]
fn unknown_model_bad_input_and_bad_stream_len_are_typed() {
    let (handle, _golden) = start(64, ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let images = tiny_images(1);

    let mut bad_model = request(1, &images[0]);
    bad_model.model_id = 99;
    match client.infer(bad_model).unwrap() {
        InferReply::Err(e) => assert_eq!(e.code, ErrorCode::UnknownModel),
        other => panic!("expected UnknownModel, got {other:?}"),
    }

    let mut bad_values = request(2, &images[0]);
    bad_values.values[5] = f32::INFINITY;
    match client.infer(bad_values).unwrap() {
        InferReply::Err(e) => assert_eq!(e.code, ErrorCode::BadInput),
        other => panic!("expected BadInput, got {other:?}"),
    }

    let mut bad_len = request(3, &images[0]);
    bad_len.stream_len = Some(100); // not a supported prefix
    match client.infer(bad_len).unwrap() {
        InferReply::Err(e) => {
            assert_eq!(e.code, ErrorCode::BadInput);
            assert!(e.message.contains("stream length"), "{}", e.message);
        }
        other => panic!("expected BadInput, got {other:?}"),
    }

    let stats = handle.shutdown();
    assert_eq!(stats.rejected_unknown_model, 1);
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.completed, 0);
}

#[test]
fn overload_rejects_with_typed_error_and_no_hangs() {
    // One serial worker, queue of one: pipelining N slow requests must
    // answer every single one — a couple completed, the rest Overloaded.
    let (handle, _golden) = start(
        4096,
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            batch_max: 1,
            default_deadline: Duration::from_secs(60),
            ..ServeConfig::default()
        },
    );
    let images = tiny_images(1);
    let mut client = Client::connect(handle.addr()).unwrap();

    const N: u64 = 8;
    for id in 0..N {
        client
            .send(&Frame::InferRequest(request(id, &images[0])))
            .unwrap();
    }
    let mut completed = 0u64;
    let mut overloaded = 0u64;
    for _ in 0..N {
        match client.recv().unwrap() {
            Frame::InferResponse(_) => completed += 1,
            Frame::Error(e) if e.code == ErrorCode::Overloaded => overloaded += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(completed + overloaded, N, "every request must be answered");
    assert!(completed >= 1, "the in-service request must complete");
    assert!(overloaded >= 1, "queue of 1 must reject under a burst of 8");

    let stats = handle.shutdown();
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.rejected_overload, overloaded);
    assert!(
        stats.queue_depth_hwm <= 1,
        "admission limit exceeded: {stats:?}"
    );
}

#[test]
fn model_budget_rejections_do_not_starve_other_models() {
    // Two models share a roomy queue, but each gets a queued-share of one.
    // A burst on model 1 must bounce off its own budget (never the shared
    // queue) while model 2 sails through untouched.
    let sim = SimConfig::with_stream_len(4096).unwrap();
    let cache = Arc::new(ModelCache::new());
    let registry = ModelRegistry::build(
        vec![
            ModelSpec {
                id: MODEL_ID,
                network: tiny_network(),
                cfg: sim,
            },
            ModelSpec {
                id: MODEL_ID + 1,
                network: tiny_network(),
                cfg: sim,
            },
        ],
        &cache,
    )
    .unwrap();
    let handle = Server::start(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            batch_max: 1,
            model_queue_share: Some(1),
            default_deadline: Duration::from_secs(60),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let images = tiny_images(1);
    let mut client = Client::connect(handle.addr()).unwrap();

    const N: u64 = 6;
    for id in 0..N {
        client
            .send(&Frame::InferRequest(request(id, &images[0])))
            .unwrap();
    }
    let mut other = request(N, &images[0]);
    other.model_id = MODEL_ID + 1;
    client.send(&Frame::InferRequest(other)).unwrap();

    let mut completed = 0u64;
    let mut overloaded = 0u64;
    let mut other_completed = false;
    for _ in 0..=N {
        match client.recv().unwrap() {
            Frame::InferResponse(r) => {
                if r.request_id == N {
                    other_completed = true;
                }
                completed += 1;
            }
            Frame::Error(e) if e.code == ErrorCode::Overloaded => {
                assert!(e.message.contains("admission budget"), "{}", e.message);
                overloaded += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(completed + overloaded, N + 1, "every request answered");
    assert!(overloaded >= 1, "share of 1 must reject under a burst of 6");
    assert!(other_completed, "the second model must not be starved");

    let stats = handle.shutdown();
    assert_eq!(stats.rejected_model_budget, overloaded);
    // Queue occupancy stays bounded by the per-model shares, so the
    // shared queue itself never fills.
    assert_eq!(stats.rejected_overload, 0);
    assert!(stats.queue_depth_hwm <= 2, "{stats:?}");
}

#[test]
fn expired_deadline_is_reported_without_burning_simulation_time() {
    let (handle, _golden) = start(
        4096,
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            batch_max: 1,
            default_deadline: Duration::from_secs(60),
            ..ServeConfig::default()
        },
    );
    let images = tiny_images(1);
    let mut client = Client::connect(handle.addr()).unwrap();

    // Three slow requests keep the single serial worker busy for many
    // milliseconds; the FIFO queue guarantees the hurried request behind
    // them waits at least that long, so its 1 µs deadline must expire.
    for id in 0..3 {
        client
            .send(&Frame::InferRequest(request(id, &images[0])))
            .unwrap();
    }
    let mut hurried = request(3, &images[0]);
    hurried.deadline_micros = 1;
    client.send(&Frame::InferRequest(hurried)).unwrap();

    let mut ok = 0u64;
    let mut saw_expired = false;
    for _ in 0..4 {
        match client.recv().unwrap() {
            Frame::InferResponse(r) => {
                assert!(r.request_id < 3);
                ok += 1;
            }
            Frame::Error(e) => {
                assert_eq!(e.request_id, 3);
                assert_eq!(e.code, ErrorCode::DeadlineExceeded);
                saw_expired = true;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(ok, 3);
    assert!(saw_expired);

    let stats = handle.shutdown();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 3);
}

#[test]
fn stats_travel_over_the_wire() {
    let (handle, _golden) = start(64, ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let images = tiny_images(2);

    for id in 0..3 {
        match client
            .infer(request(id, &images[(id % 2) as usize]))
            .unwrap()
        {
            InferReply::Ok(_) => {}
            InferReply::Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    let snap: StatsSnapshot = client.stats(500).unwrap();
    assert_eq!(snap.received, 3);
    assert_eq!(snap.accepted, 3);
    assert_eq!(snap.completed, 3);
    assert!(snap.batches >= 1);
    assert!(snap.mean_batch_size() >= 1.0);
    // After at least one micro-batch, the plan gauges reflect the executed
    // model's autotuned plan: a decodable kernel code and a non-zero tile.
    assert!(acoustic_runtime::KernelKind::from_code(snap.plan_kernel).is_some());
    assert!(snap.plan_tile > 0);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_answers_everything_admitted() {
    let (handle, _golden) = start(
        1024,
        ServeConfig {
            workers: 1,
            queue_capacity: 8,
            batch_max: 2,
            default_deadline: Duration::from_secs(60),
            ..ServeConfig::default()
        },
    );
    let images = tiny_images(1);
    let mut client = Client::connect(handle.addr()).unwrap();

    const N: u64 = 4;
    for id in 0..N {
        client
            .send(&Frame::InferRequest(request(id, &images[0])))
            .unwrap();
    }
    // Let the burst be admitted, then shut down while it is still being
    // worked; the contract is that every admitted request is answered.
    std::thread::sleep(Duration::from_millis(100));
    let stats = handle.shutdown();
    assert_eq!(drain_accounted(&stats), stats.received, "{stats:?}");

    let mut answered = 0u64;
    while answered < stats.received {
        match client.recv() {
            Ok(Frame::InferResponse(_)) | Ok(Frame::Error(_)) => answered += 1,
            Ok(other) => panic!("unexpected frame {other:?}"),
            Err(e) => panic!(
                "missing replies after shutdown ({answered}/{}): {e}",
                stats.received
            ),
        }
    }
}

#[test]
fn reactor_and_threaded_paths_are_bit_identical() {
    // The same request stream through both I/O paths must produce the
    // same bytes — and both must match direct engine evaluation.
    let images = tiny_images(4);
    let engine = BatchEngine::new(1).unwrap();
    let mut per_path: Vec<Vec<Vec<u32>>> = Vec::new();

    for io in [IoModel::Reactor, IoModel::Threaded] {
        if io == IoModel::Reactor && !acoustic_net::Poller::supported() {
            return; // no readiness support on this host; nothing to compare
        }
        let (handle, golden) = start(
            128,
            ServeConfig {
                workers: 2,
                io,
                default_deadline: Duration::from_secs(30),
                ..ServeConfig::default()
            },
        );
        assert_eq!(handle.reactor_active(), io == IoModel::Reactor);
        let mut client = Client::connect(handle.addr()).unwrap();
        let mut bits: Vec<Vec<u32>> = Vec::new();
        for id in 0..8u64 {
            match client
                .infer(request(id, &images[(id % 4) as usize]))
                .unwrap()
            {
                InferReply::Ok(r) => {
                    let gold = engine
                        .run_ready(
                            &golden,
                            &[ReadyRequest {
                                image_index: id,
                                input: &images[(id % 4) as usize],
                                stream_len: None,
                                margin: None,
                            }],
                        )
                        .unwrap()
                        .remove(0)
                        .unwrap();
                    let gold_bits: Vec<u32> =
                        gold.logits.as_slice().iter().map(|v| v.to_bits()).collect();
                    let got_bits: Vec<u32> = r.logits.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(gold_bits, got_bits, "io {io:?} id {id}");
                    bits.push(got_bits);
                }
                InferReply::Err(e) => panic!("io {io:?} id {id} failed: {e:?}"),
            }
        }
        let stats = handle.shutdown();
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.reactor_mode, u64::from(io == IoModel::Reactor));
        assert_eq!(drain_accounted(&stats), stats.received, "{stats:?}");
        per_path.push(bits);
    }
    assert_eq!(per_path[0], per_path[1], "I/O paths disagree bit-for-bit");
}

#[test]
fn many_persistent_connections_share_one_reactor() {
    if !acoustic_net::Poller::supported() {
        return;
    }
    const CONNS: usize = 64;
    const PER_CONN: u64 = 3;
    let (handle, golden) = start(
        64,
        ServeConfig {
            workers: 2,
            queue_capacity: 256,
            io: IoModel::Reactor,
            default_deadline: Duration::from_secs(60),
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    let images = tiny_images(4);

    let replies: Vec<(u64, Vec<u32>)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..CONNS as u64 {
            let images = &images;
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut got = Vec::new();
                for k in 0..PER_CONN {
                    let id = c + CONNS as u64 * k;
                    match client
                        .infer(request(id, &images[(id % 4) as usize]))
                        .unwrap()
                    {
                        InferReply::Ok(r) => {
                            got.push((id, r.logits.iter().map(|v| v.to_bits()).collect()))
                        }
                        InferReply::Err(e) => panic!("conn {c} id {id}: {e:?}"),
                    }
                }
                got
            }));
        }
        joins.into_iter().flat_map(|j| j.join().unwrap()).collect()
    });
    assert_eq!(replies.len(), CONNS * PER_CONN as usize);

    let stats = handle.shutdown();
    assert_eq!(stats.completed, (CONNS as u64) * PER_CONN);
    assert!(stats.conns_opened >= CONNS as u64, "{stats:?}");
    assert!(stats.active_connections_hwm >= CONNS as u64, "{stats:?}");
    assert_eq!(stats.reactor_mode, 1);
    assert_eq!(drain_accounted(&stats), stats.received, "{stats:?}");

    // Spot-check bit-exactness on a sample of the replies.
    let engine = BatchEngine::new(1).unwrap();
    for (id, got_bits) in replies.iter().filter(|(id, _)| id % 37 == 0) {
        let gold = engine
            .run_ready(
                &golden,
                &[ReadyRequest {
                    image_index: *id,
                    input: &images[(id % 4) as usize],
                    stream_len: None,
                    margin: None,
                }],
            )
            .unwrap()
            .remove(0)
            .unwrap();
        let gold_bits: Vec<u32> = gold.logits.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(&gold_bits, got_bits, "id {id}");
    }
}

#[test]
fn shard_and_connection_gauges_travel_over_the_wire() {
    let (handle, _golden) = start(
        64,
        ServeConfig {
            workers: 3,
            shards: 3,
            default_deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    );
    let images = tiny_images(2);

    // Two sequential connections, a handful of requests each.
    for _ in 0..2 {
        let mut client = Client::connect(handle.addr()).unwrap();
        for id in 0..4u64 {
            match client
                .infer(request(id, &images[(id % 2) as usize]))
                .unwrap()
            {
                InferReply::Ok(_) => {}
                InferReply::Err(e) => panic!("unexpected error {e:?}"),
            }
        }
    }
    let mut client = Client::connect(handle.addr()).unwrap();
    let snap: StatsSnapshot = client.stats(500).unwrap();
    assert_eq!(snap.shards, 3);
    assert_eq!(snap.completed, 8);
    assert!(snap.conns_opened >= 3, "{snap:?}");
    assert!(snap.active_connections >= 1, "{snap:?}");
    assert!(
        snap.shard_depth_hwm <= snap.queue_depth_hwm.max(1),
        "{snap:?}"
    );
    assert_eq!(
        snap.reactor_mode,
        u64::from(handle.reactor_active()),
        "{snap:?}"
    );
    handle.shutdown();
}
