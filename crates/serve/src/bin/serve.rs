//! Stand-alone acoustic-serve server over the deterministic demo model.
//!
//! ```text
//! serve [--addr 127.0.0.1:7171] [--stream-len 128] [--workers 2]
//!       [--queue-capacity 64] [--batch-max 8] [--batch-wait-us 500]
//!       [--deadline-ms 250] [--train 128] [--test 32] [--epochs 2]
//!       [--duration-secs 0] [--zoo-dir DIR] [--cache-budget-mb M]
//!       [--model-queue-share N] [--io auto|reactor|threaded] [--shards N]
//!       [--idle-timeout-ms T] [--max-connections N] [--pin]
//! ```
//!
//! By default trains the demo digit CNN (deterministically — a load
//! generator using the same training parameters holds bit-identical
//! weights) and registers it under model id 1. With `--zoo-dir` it
//! instead serves every checkpoint of a `train-zoo` artifact directory
//! under the manifest's model ids. `--cache-budget-mb` bounds the
//! prepared-model cache (cold models are recompiled on demand);
//! `--model-queue-share` caps each model's share of the admission queue.
//! Serves until `--duration-secs` elapses (0 = run until killed).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use acoustic_runtime::{ModelCache, DEFAULT_CACHE_CAPACITY};
use acoustic_serve::{ModelRegistry, ModelSpec, ServeConfig, Server, DEMO_MODEL_ID};
use acoustic_simfunc::SimConfig;

struct Args {
    addr: String,
    stream_len: usize,
    train: usize,
    test: usize,
    epochs: usize,
    duration_secs: u64,
    zoo_dir: Option<PathBuf>,
    cache_budget_mb: Option<usize>,
    cfg: ServeConfig,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7171".into(),
        stream_len: 128,
        train: 128,
        test: 32,
        epochs: 2,
        duration_secs: 0,
        zoo_dir: None,
        cache_budget_mb: None,
        cfg: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = val("--addr"),
            "--stream-len" => args.stream_len = val("--stream-len").parse().expect("usize"),
            "--train" => args.train = val("--train").parse().expect("usize"),
            "--test" => args.test = val("--test").parse().expect("usize"),
            "--epochs" => args.epochs = val("--epochs").parse().expect("usize"),
            "--duration-secs" => {
                args.duration_secs = val("--duration-secs").parse().expect("u64");
            }
            "--workers" => args.cfg.workers = val("--workers").parse().expect("usize"),
            "--queue-capacity" => {
                args.cfg.queue_capacity = val("--queue-capacity").parse().expect("usize");
            }
            "--batch-max" => args.cfg.batch_max = val("--batch-max").parse().expect("usize"),
            "--batch-wait-us" => {
                args.cfg.batch_wait =
                    Duration::from_micros(val("--batch-wait-us").parse().expect("u64"));
            }
            "--deadline-ms" => {
                args.cfg.default_deadline =
                    Duration::from_millis(val("--deadline-ms").parse().expect("u64"));
            }
            "--zoo-dir" => args.zoo_dir = Some(PathBuf::from(val("--zoo-dir"))),
            "--cache-budget-mb" => {
                args.cache_budget_mb = Some(val("--cache-budget-mb").parse().expect("usize"));
            }
            "--model-queue-share" => {
                args.cfg.model_queue_share =
                    Some(val("--model-queue-share").parse().expect("usize"));
            }
            "--io" => {
                args.cfg.io = val("--io").parse().expect("auto|reactor|threaded");
            }
            "--shards" => args.cfg.shards = val("--shards").parse().expect("usize"),
            "--idle-timeout-ms" => {
                args.cfg.idle_timeout = Some(Duration::from_millis(
                    val("--idle-timeout-ms").parse().expect("u64"),
                ));
            }
            "--max-connections" => {
                args.cfg.max_connections = val("--max-connections").parse().expect("usize");
            }
            "--pin" => args.cfg.pin_workers = true,
            "--help" | "-h" => {
                println!(
                    "serve [--addr A] [--stream-len N] [--workers W] [--queue-capacity Q]\n      \
                     [--batch-max B] [--batch-wait-us T] [--deadline-ms D]\n      \
                     [--train N] [--test N] [--epochs E] [--duration-secs S]\n      \
                     [--zoo-dir DIR] [--cache-budget-mb M] [--model-queue-share N]\n      \
                     [--io auto|reactor|threaded] [--shards N] [--idle-timeout-ms T]\n      \
                     [--max-connections N] [--pin]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cache = Arc::new(
        ModelCache::with_limits(
            DEFAULT_CACHE_CAPACITY,
            args.cache_budget_mb.map(|mb| mb * 1024 * 1024),
        )
        .expect("valid cache limits"),
    );

    let registry = match &args.zoo_dir {
        Some(dir) => {
            eprintln!("loading model zoo from {}…", dir.display());
            ModelRegistry::from_zoo_dir(dir, &cache).expect("zoo loads")
        }
        None => {
            eprintln!(
                "training demo model ({} train / {} test images, {} epochs)…",
                args.train, args.test, args.epochs
            );
            let (network, _data) = acoustic_serve::demo_model(args.train, args.test, args.epochs)
                .expect("training succeeds");
            ModelRegistry::build(
                vec![ModelSpec {
                    id: DEMO_MODEL_ID,
                    network,
                    cfg: SimConfig::with_stream_len(args.stream_len).expect("valid stream length"),
                }],
                &cache,
            )
            .expect("model preparation succeeds")
        }
    };
    let model_ids = registry.ids();

    let handle = Server::start(args.addr.as_str(), registry, args.cfg).expect("server starts");
    println!("listening on {}", handle.addr());
    println!(
        "io: {} ({} queue shard(s), {} worker(s))",
        if handle.reactor_active() {
            "reactor"
        } else {
            "threaded"
        },
        args.cfg.effective_shards(),
        args.cfg.workers
    );
    match &args.zoo_dir {
        Some(dir) => println!("models {model_ids:?} from zoo {}", dir.display()),
        None => println!(
            "model {DEMO_MODEL_ID}: demo digit CNN @ stream length {}",
            args.stream_len
        ),
    }

    if args.duration_secs == 0 {
        // Serve until killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(args.duration_secs));
    let stats = handle.shutdown();
    println!(
        "shutting down: received {} accepted {} completed {} overloaded {} expired {}",
        stats.received, stats.accepted, stats.completed, stats.rejected_overload, stats.expired
    );
}
