//! Open-loop load generator with golden-response validation.
//!
//! ```text
//! loadgen [--self-host | --addr HOST:PORT]
//!         [--qps 50] [--requests 100] [--connections 2] [--seed 7]
//!         [--deadline-ms 0] [--stream-len-override N] [--margin-override M]
//!         [--train 128] [--test 32] [--epochs 2] [--stream-len 128]
//!         [--no-validate]
//! ```
//!
//! Trains the same demo model as the `serve` binary (bit-identical — both
//! sides are fully deterministic), replays a Poisson arrival schedule at
//! the target QPS, and validates every accepted response against local
//! `BatchEngine::run_ready` evaluation. Exits non-zero if any response is
//! wrong or dropped, which makes it usable directly as a CI smoke check.
//!
//! `--self-host` starts the server in-process on an ephemeral port, so a
//! single command exercises the full client/server path.

use std::net::SocketAddr;
use std::time::Duration;

use acoustic_runtime::{BatchEngine, ModelCache};
use acoustic_serve::{
    run_load, summarize, validate_responses, LoadGenConfig, ModelRegistry, ModelSpec, ServeConfig,
    Server, DEMO_MODEL_ID,
};
use acoustic_simfunc::SimConfig;

struct Args {
    addr: Option<String>,
    self_host: bool,
    load: LoadGenConfig,
    train: usize,
    test: usize,
    epochs: usize,
    stream_len: usize,
    validate: bool,
    serve_cfg: ServeConfig,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        self_host: false,
        load: LoadGenConfig::default(),
        train: 128,
        test: 32,
        epochs: 2,
        stream_len: 128,
        validate: true,
        serve_cfg: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(val("--addr")),
            "--self-host" => args.self_host = true,
            "--qps" => args.load.qps = val("--qps").parse().expect("f64"),
            "--requests" => args.load.requests = val("--requests").parse().expect("u64"),
            "--connections" => args.load.connections = val("--connections").parse().expect("usize"),
            "--seed" => args.load.seed = val("--seed").parse().expect("u64"),
            "--deadline-ms" => {
                let ms: u32 = val("--deadline-ms").parse().expect("u32");
                args.load.deadline_micros = ms.saturating_mul(1000);
            }
            "--stream-len-override" => {
                args.load.stream_len = Some(val("--stream-len-override").parse().expect("u32"));
            }
            "--margin-override" => {
                args.load.margin = Some(val("--margin-override").parse().expect("f32"));
            }
            "--train" => args.train = val("--train").parse().expect("usize"),
            "--test" => args.test = val("--test").parse().expect("usize"),
            "--epochs" => args.epochs = val("--epochs").parse().expect("usize"),
            "--stream-len" => args.stream_len = val("--stream-len").parse().expect("usize"),
            "--no-validate" => args.validate = false,
            "--queue-capacity" => {
                args.serve_cfg.queue_capacity = val("--queue-capacity").parse().expect("usize");
            }
            "--workers" => args.serve_cfg.workers = val("--workers").parse().expect("usize"),
            "--help" | "-h" => {
                println!(
                    "loadgen [--self-host | --addr HOST:PORT] [--qps Q] [--requests N]\n        \
                     [--connections C] [--seed S] [--deadline-ms D]\n        \
                     [--stream-len-override N] [--margin-override M]\n        \
                     [--train N] [--test N] [--epochs E] [--stream-len L]\n        \
                     [--queue-capacity Q] [--workers W] [--no-validate]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    if args.self_host == args.addr.is_some() {
        panic!("pass exactly one of --self-host or --addr; try --help");
    }
    args
}

fn main() {
    let args = parse_args();

    eprintln!(
        "training demo model ({} train / {} test images, {} epochs)…",
        args.train, args.test, args.epochs
    );
    let (network, data) =
        acoustic_serve::demo_model(args.train, args.test, args.epochs).expect("training succeeds");
    let images: Vec<_> = data.test.iter().map(|(t, _)| t.clone()).collect();
    let sim_cfg = SimConfig::with_stream_len(args.stream_len).expect("valid stream length");
    let cache = ModelCache::new();
    // Golden model for validation; the self-hosted registry dedups onto
    // the same prepared instance through the shared cache.
    let golden = cache
        .get_or_compile(sim_cfg, &network)
        .expect("model preparation succeeds");

    let server = if args.self_host {
        let registry = ModelRegistry::build(
            vec![ModelSpec {
                id: DEMO_MODEL_ID,
                network,
                cfg: sim_cfg,
            }],
            &cache,
        )
        .expect("registry builds");
        Some(Server::start("127.0.0.1:0", registry, args.serve_cfg).expect("server starts"))
    } else {
        None
    };
    let addr: SocketAddr = match (&server, &args.addr) {
        (Some(h), _) => h.addr(),
        (None, Some(a)) => a.parse().expect("valid HOST:PORT address"),
        (None, None) => unreachable!("checked in parse_args"),
    };

    eprintln!(
        "offering {} requests at {} QPS over {} connection(s) to {addr}…",
        args.load.requests, args.load.qps, args.load.connections
    );
    let outcome = run_load(addr, &images, &args.load).expect("load run completes");
    let report = summarize(&outcome, args.load.requests);

    let mismatches = if args.validate {
        let engine = BatchEngine::new(1).expect("engine builds");
        validate_responses(&outcome, &golden, &engine, &images, &args.load)
            .expect("validation runs")
    } else {
        0
    };

    println!("offered            {}", report.offered);
    println!("completed          {}", report.completed);
    println!("rejected overload  {}", report.rejected_overload);
    println!("deadline exceeded  {}", report.deadline_exceeded);
    println!("other errors       {}", report.other_errors);
    println!("dropped            {}", report.dropped);
    println!(
        "p50 / p95 / p99    {} / {} / {} µs",
        report.p50_us, report.p95_us, report.p99_us
    );
    println!(
        "goodput            {:.1} QPS over {:?}",
        report.goodput_qps, report.elapsed
    );
    println!("rejection rate     {:.1}%", 100.0 * report.rejection_rate);
    if args.validate {
        println!("golden mismatches  {mismatches}");
    }

    if let Some(handle) = server {
        let stats = handle.shutdown();
        println!(
            "server: received {} accepted {} completed {} batches {} (mean size {:.2})",
            stats.received,
            stats.accepted,
            stats.completed,
            stats.batches,
            stats.mean_batch_size()
        );
    }

    // CI contract: any wrong or silently dropped response fails the run.
    let failed = mismatches > 0 || report.dropped > 0 || report.other_errors > 0;
    // Sanity: an idle-capacity run should complete something.
    let nothing_done = report.completed == 0;
    if failed || nothing_done {
        eprintln!(
            "FAIL: mismatches={mismatches} dropped={} other_errors={} completed={}",
            report.dropped, report.other_errors, report.completed
        );
        std::process::exit(1);
    }
    println!("OK");
    std::thread::sleep(Duration::from_millis(10)); // let stdout flush cleanly under CI runners
}
