//! Open-loop load generator with golden-response validation.
//!
//! ```text
//! loadgen [--self-host | --addr HOST:PORT]
//!         [--qps 50] [--requests 100] [--connections 2] [--seed 7]
//!         [--deadline-ms 0] [--stream-len-override N] [--margin-override M]
//!         [--train 128] [--test 32] [--epochs 2] [--stream-len 128]
//!         [--zoo-dir DIR] [--mix 1:3,2:1] [--no-validate]
//!         [--io auto|reactor|threaded] [--conn-report]
//! ```
//!
//! In demo mode, trains the same demo model as the `serve` binary
//! (bit-identical — both sides are fully deterministic). With `--zoo-dir`
//! it instead loads a `train-zoo` checkpoint directory and replays
//! **mixed-model** traffic: each schedule slot's model is drawn from the
//! weighted `--mix` set (defaulting to equal weights over every zoo
//! model). Either way it replays a Poisson arrival schedule at the target
//! QPS and validates every accepted response against local
//! `BatchEngine::run_ready` evaluation of the same checkpoint, so server
//! and generator must agree bit-for-bit. Exits non-zero if any response
//! is wrong or dropped, which makes it usable directly as a CI smoke
//! check.
//!
//! `--self-host` starts the server in-process on an ephemeral port (for
//! zoo mode: serving the same `--zoo-dir`), so a single command exercises
//! the full client/server path.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use acoustic_runtime::{BatchEngine, ModelCache, PreparedModel};
use acoustic_serve::{
    parse_mix, run_load, run_load_mix, summarize, summarize_connections, summarize_mix,
    validate_responses, validate_responses_mix, LoadGenConfig, ModelRegistry, ModelSpec,
    ModelTraffic, ServeConfig, Server, DEMO_MODEL_ID,
};
use acoustic_simfunc::SimConfig;
use acoustic_train::ZooModel;

struct Args {
    addr: Option<String>,
    self_host: bool,
    load: LoadGenConfig,
    train: usize,
    test: usize,
    epochs: usize,
    stream_len: usize,
    zoo_dir: Option<PathBuf>,
    mix: Option<String>,
    validate: bool,
    conn_report: bool,
    serve_cfg: ServeConfig,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        self_host: false,
        load: LoadGenConfig::default(),
        train: 128,
        test: 32,
        epochs: 2,
        stream_len: 128,
        zoo_dir: None,
        mix: None,
        validate: true,
        conn_report: false,
        serve_cfg: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(val("--addr")),
            "--self-host" => args.self_host = true,
            "--qps" => args.load.qps = val("--qps").parse().expect("f64"),
            "--requests" => args.load.requests = val("--requests").parse().expect("u64"),
            "--connections" => args.load.connections = val("--connections").parse().expect("usize"),
            "--seed" => args.load.seed = val("--seed").parse().expect("u64"),
            "--deadline-ms" => {
                let ms: u32 = val("--deadline-ms").parse().expect("u32");
                args.load.deadline_micros = ms.saturating_mul(1000);
            }
            "--stream-len-override" => {
                args.load.stream_len = Some(val("--stream-len-override").parse().expect("u32"));
            }
            "--margin-override" => {
                args.load.margin = Some(val("--margin-override").parse().expect("f32"));
            }
            "--train" => args.train = val("--train").parse().expect("usize"),
            "--test" => args.test = val("--test").parse().expect("usize"),
            "--epochs" => args.epochs = val("--epochs").parse().expect("usize"),
            "--stream-len" => args.stream_len = val("--stream-len").parse().expect("usize"),
            "--zoo-dir" => args.zoo_dir = Some(PathBuf::from(val("--zoo-dir"))),
            "--mix" => args.mix = Some(val("--mix")),
            "--no-validate" => args.validate = false,
            "--queue-capacity" => {
                args.serve_cfg.queue_capacity = val("--queue-capacity").parse().expect("usize");
            }
            "--workers" => args.serve_cfg.workers = val("--workers").parse().expect("usize"),
            "--model-queue-share" => {
                args.serve_cfg.model_queue_share =
                    Some(val("--model-queue-share").parse().expect("usize"));
            }
            "--io" => {
                args.serve_cfg.io = val("--io").parse().expect("auto|reactor|threaded");
            }
            "--conn-report" => args.conn_report = true,
            "--help" | "-h" => {
                println!(
                    "loadgen [--self-host | --addr HOST:PORT] [--qps Q] [--requests N]\n        \
                     [--connections C] [--seed S] [--deadline-ms D]\n        \
                     [--stream-len-override N] [--margin-override M]\n        \
                     [--train N] [--test N] [--epochs E] [--stream-len L]\n        \
                     [--zoo-dir DIR] [--mix 1:3,2:1] [--queue-capacity Q]\n        \
                     [--workers W] [--model-queue-share N] [--no-validate]\n        \
                     [--io auto|reactor|threaded] [--conn-report]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    if args.self_host == args.addr.is_some() {
        panic!("pass exactly one of --self-host or --addr; try --help");
    }
    if args.mix.is_some() && args.zoo_dir.is_none() {
        panic!("--mix needs --zoo-dir (mixed traffic replays zoo checkpoints); try --help");
    }
    args
}

/// Prints the shared report block and returns the CI exit decision inputs.
fn report_and_exit(
    report: acoustic_serve::LoadReport,
    per_model: &[acoustic_serve::ModelLoadReport],
    per_conn: &[acoustic_serve::ConnectionReport],
    mismatches: u64,
    validated: bool,
    server: Option<acoustic_serve::ServerHandle>,
) -> ! {
    println!("offered            {}", report.offered);
    println!("completed          {}", report.completed);
    println!("rejected overload  {}", report.rejected_overload);
    println!("deadline exceeded  {}", report.deadline_exceeded);
    println!("warming            {}", report.warming);
    println!("other errors       {}", report.other_errors);
    println!("dropped            {}", report.dropped);
    println!(
        "p50 / p95 / p99    {} / {} / {} µs",
        report.p50_us, report.p95_us, report.p99_us
    );
    println!(
        "goodput            {:.1} QPS over {:?}",
        report.goodput_qps, report.elapsed
    );
    println!("rejection rate     {:.1}%", 100.0 * report.rejection_rate);
    for m in per_model {
        println!(
            "model {:<3} offered {:<5} completed {:<5} rejected {:<4} dropped {:<4} \
             p50 {} µs p99 {} µs goodput {:.1} QPS",
            m.model_id,
            m.offered,
            m.completed,
            m.rejected_overload,
            m.dropped,
            m.p50_us,
            m.p99_us,
            m.goodput_qps
        );
    }
    for c in per_conn {
        println!(
            "conn {:<4} offered {:<5} completed {:<5} errors {:<4} dropped {:<4} \
             p50 {} µs p99 {} µs",
            c.connection, c.offered, c.completed, c.errors, c.dropped, c.p50_us, c.p99_us
        );
    }
    if validated {
        println!("golden mismatches  {mismatches}");
    }

    if let Some(handle) = server {
        let stats = handle.shutdown();
        println!(
            "server: received {} accepted {} completed {} batches {} (mean size {:.2}) \
             model-budget rejections {}",
            stats.received,
            stats.accepted,
            stats.completed,
            stats.batches,
            stats.mean_batch_size(),
            stats.rejected_model_budget
        );
        println!(
            "server io: {} shards {} shard-hwm {} steals {} conns {} (peak active {}) \
             idle-reaped {}",
            if stats.reactor_mode == 1 {
                "reactor"
            } else {
                "threaded"
            },
            stats.shards,
            stats.shard_depth_hwm,
            stats.queue_steals,
            stats.conns_opened,
            stats.active_connections_hwm,
            stats.idle_reaped
        );
    }

    // CI contract: any wrong or silently dropped response fails the run.
    let failed = mismatches > 0 || report.dropped > 0 || report.other_errors > 0;
    // Sanity: an idle-capacity run should complete something.
    let nothing_done = report.completed == 0;
    if failed || nothing_done {
        eprintln!(
            "FAIL: mismatches={mismatches} dropped={} other_errors={} completed={}",
            report.dropped, report.other_errors, report.completed
        );
        std::process::exit(1);
    }
    println!("OK");
    std::thread::sleep(Duration::from_millis(10)); // let stdout flush cleanly under CI runners
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    match &args.zoo_dir {
        Some(dir) => run_zoo_mode(&args, dir.clone()),
        None => run_demo_mode(&args),
    }
}

fn resolve_addr(server: &Option<acoustic_serve::ServerHandle>, args: &Args) -> SocketAddr {
    match (server, &args.addr) {
        (Some(h), _) => h.addr(),
        (None, Some(a)) => a.parse().expect("valid HOST:PORT address"),
        (None, None) => unreachable!("checked in parse_args"),
    }
}

fn run_demo_mode(args: &Args) -> ! {
    eprintln!(
        "training demo model ({} train / {} test images, {} epochs)…",
        args.train, args.test, args.epochs
    );
    let (network, data) =
        acoustic_serve::demo_model(args.train, args.test, args.epochs).expect("training succeeds");
    let images: Vec<_> = data.test.iter().map(|(t, _)| t.clone()).collect();
    let sim_cfg = SimConfig::with_stream_len(args.stream_len).expect("valid stream length");
    let cache = Arc::new(ModelCache::new());
    // Golden model for validation; the self-hosted registry dedups onto
    // the same prepared instance through the shared cache.
    let golden = cache
        .get_or_compile(sim_cfg, &network)
        .expect("model preparation succeeds");

    let server = if args.self_host {
        let registry = ModelRegistry::build(
            vec![ModelSpec {
                id: DEMO_MODEL_ID,
                network,
                cfg: sim_cfg,
            }],
            &cache,
        )
        .expect("registry builds");
        Some(Server::start("127.0.0.1:0", registry, args.serve_cfg).expect("server starts"))
    } else {
        None
    };
    let addr = resolve_addr(&server, args);

    eprintln!(
        "offering {} requests at {} QPS over {} connection(s) to {addr}…",
        args.load.requests, args.load.qps, args.load.connections
    );
    let outcome = run_load(addr, &images, &args.load).expect("load run completes");
    let report = summarize(&outcome, args.load.requests);
    let per_conn = if args.conn_report {
        summarize_connections(&outcome, &args.load)
    } else {
        Vec::new()
    };

    let mismatches = if args.validate {
        let engine = BatchEngine::new(1).expect("engine builds");
        validate_responses(&outcome, &golden, &engine, &images, &args.load)
            .expect("validation runs")
    } else {
        0
    };
    report_and_exit(report, &[], &per_conn, mismatches, args.validate, server)
}

fn run_zoo_mode(args: &Args, dir: PathBuf) -> ! {
    eprintln!("loading model zoo from {}…", dir.display());
    let zoo = acoustic_train::load_zoo(&dir).expect("zoo loads");
    let pairs = match &args.mix {
        Some(spec) => parse_mix(spec).expect("valid --mix spec"),
        None => zoo.iter().map(|(e, _)| (e.model.id(), 1)).collect(),
    };

    let cache = Arc::new(ModelCache::new());
    let mut traffic: Vec<ModelTraffic> = Vec::new();
    let mut golden: Vec<(u32, Arc<PreparedModel>)> = Vec::new();
    for (id, weight) in &pairs {
        let (entry, network) = zoo
            .iter()
            .find(|(e, _)| e.model.id() == *id)
            .unwrap_or_else(|| panic!("mix model {id} is not in the zoo manifest"));
        let model = ZooModel::from_id(*id).expect("manifest ids are zoo models");
        // Any deterministic image set works — the generator and the golden
        // recompute see the same tensors by construction.
        let images: Vec<_> = model
            .data_kind()
            .expect("mix models are trainable and carry a dataset")
            .generate(0, args.test.max(1), 11)
            .test
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let sim_cfg = SimConfig::with_stream_len(entry.stream_len).expect("valid stream length");
        let prepared = cache
            .get_or_compile(sim_cfg, network)
            .expect("model preparation succeeds");
        golden.push((*id, prepared));
        traffic.push(ModelTraffic {
            model_id: *id,
            weight: *weight,
            images,
        });
    }

    let server = if args.self_host {
        let registry = ModelRegistry::from_zoo_dir(&dir, &cache).expect("zoo registry builds");
        Some(Server::start("127.0.0.1:0", registry, args.serve_cfg).expect("server starts"))
    } else {
        None
    };
    let addr = resolve_addr(&server, args);

    eprintln!(
        "offering {} mixed requests ({} models) at {} QPS over {} connection(s) to {addr}…",
        args.load.requests,
        traffic.len(),
        args.load.qps,
        args.load.connections
    );
    let outcome = run_load_mix(addr, &traffic, &args.load).expect("load run completes");
    let report = summarize(&outcome, args.load.requests);
    let per_model = summarize_mix(&outcome, &traffic, &args.load);
    let per_conn = if args.conn_report {
        summarize_connections(&outcome, &args.load)
    } else {
        Vec::new()
    };

    let mismatches = if args.validate {
        let engine = BatchEngine::new(1).expect("engine builds");
        validate_responses_mix(&outcome, &golden, &engine, &traffic, &args.load)
            .expect("validation runs")
    } else {
        0
    };
    report_and_exit(
        report,
        &per_model,
        &per_conn,
        mismatches,
        args.validate,
        server,
    )
}
