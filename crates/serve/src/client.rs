//! Blocking client for the acoustic-serve wire protocol.
//!
//! [`Client`] is a thin frame-level wrapper around a `TcpStream`; the
//! convenience methods [`Client::infer`] and [`Client::stats`] implement
//! the synchronous request/response pattern, while [`Client::send`] and
//! [`Client::recv`] allow pipelining (many requests in flight, matched by
//! request id) as the load generator does.

use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_frame, write_frame, ErrorFrame, Frame, InferRequest, InferResponse, StatsSnapshot,
    DEFAULT_MAX_PAYLOAD,
};
use crate::serve_error::ServeError;

/// Result of one inference request: either logits or a typed error frame.
#[derive(Debug, Clone)]
pub enum InferReply {
    /// The server answered with logits.
    Ok(InferResponse),
    /// The server answered with a typed error.
    Err(ErrorFrame),
}

/// A blocking connection to an acoustic-serve server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_payload: usize,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Caps the size of frames this client will accept.
    pub fn with_max_payload(mut self, max_payload: usize) -> Self {
        self.max_payload = max_payload;
        self
    }

    /// Sends one frame without waiting for a reply.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ServeError> {
        write_frame(&mut self.stream, frame)?;
        Ok(())
    }

    /// Blocks until the next frame arrives.
    ///
    /// # Errors
    ///
    /// Socket errors and malformed frames.
    pub fn recv(&mut self) -> Result<Frame, ServeError> {
        Ok(read_frame(&mut self.stream, self.max_payload)?)
    }

    /// A second handle to the same connection (e.g. a dedicated receive
    /// thread while this handle keeps sending).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn try_clone(&self) -> Result<Client, ServeError> {
        Ok(Client {
            stream: self.stream.try_clone()?,
            max_payload: self.max_payload,
        })
    }

    /// Sends pre-encoded bytes verbatim — the test suites use this to put
    /// deliberately malformed frames on the wire.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ServeError> {
        use std::io::Write;
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Shuts down the read half of the connection, forcing any clone
    /// blocked in [`Client::recv`] to return an error. Used by the load
    /// generator's grace-deadline watchdog.
    pub fn shutdown_read(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Read);
    }

    /// Sets a read timeout on the underlying socket (`None` blocks
    /// forever). While set, [`Client::recv`] returns a `WouldBlock`/
    /// `TimedOut` I/O error when the server stays silent.
    ///
    /// # Errors
    ///
    /// Propagates the socket option error.
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> Result<(), ServeError> {
        self.stream.set_read_timeout(dur)?;
        Ok(())
    }

    /// Sends `req` and blocks for its reply. Replies to other request ids
    /// arriving in between are a protocol violation for a synchronous
    /// client and are reported as [`ServeError::UnexpectedFrame`].
    ///
    /// # Errors
    ///
    /// Socket errors, malformed frames, or a mismatched reply.
    pub fn infer(&mut self, req: InferRequest) -> Result<InferReply, ServeError> {
        let id = req.request_id;
        self.send(&Frame::InferRequest(req))?;
        match self.recv()? {
            Frame::InferResponse(r) if r.request_id == id => Ok(InferReply::Ok(r)),
            Frame::Error(e) if e.request_id == id => Ok(InferReply::Err(e)),
            other => Err(ServeError::UnexpectedFrame(format!(
                "waiting for reply to {id}, got frame for {}",
                other.request_id()
            ))),
        }
    }

    /// Fetches a server statistics snapshot.
    ///
    /// # Errors
    ///
    /// Socket errors, malformed frames, or a mismatched reply.
    pub fn stats(&mut self, request_id: u64) -> Result<StatsSnapshot, ServeError> {
        self.send(&Frame::StatsRequest(request_id))?;
        match self.recv()? {
            Frame::StatsResponse(id, snap) if id == request_id => Ok(snap),
            other => Err(ServeError::UnexpectedFrame(format!(
                "waiting for stats {request_id}, got frame for {}",
                other.request_id()
            ))),
        }
    }
}
