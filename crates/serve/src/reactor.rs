//! Non-blocking connection reactor built on acoustic-net.
//!
//! One thread owns every client socket. Each poll tick it:
//!
//! 1. accepts new connections (until `WouldBlock` or the connection cap),
//! 2. reads **one bounded chunk** per readable connection into its
//!    [`FrameBuf`] and parses as many complete frames as arrived — a
//!    client dribbling a header one byte per second occupies a buffer, not
//!    a thread, and cannot stall any worker,
//! 3. moves reply bytes spooled by workers (via each connection's
//!    [`ReactorConn`] outbox) into per-connection [`WriteBuf`]s and
//!    flushes them as far as the socket allows, registering write
//!    interest only while bytes remain (backpressure without busy-poll),
//! 4. reaps connections that are finished (peer closed and every reply
//!    delivered), dead (transport error) or idle past the configured
//!    timeout.
//!
//! Workers never touch sockets: they append encoded frames to the
//! connection's outbox and ring the shared [`Waker`], which the poller
//! observes as a readable fd. The reply-visibility rule mirrors the
//! threaded path: `outstanding` is decremented only *after* the frame was
//! handed to `send`, so once the reactor observes `outstanding == 0` (and
//! then finds the outbox empty), every reply byte is either flushed or in
//! its write buffer.

use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use acoustic_net::{FrameBuf, Interest, Poller, ReadOutcome, Waker, WriteBuf};

use crate::protocol::{
    decode_frame, encode_frame, ErrorCode, Frame, FrameHeader, WireError, HEADER_LEN,
};
use crate::server::{admit, send_error, ReplyTo, Shared, DRAIN_CAP, POLL};
use crate::stats::Stats;

/// Reserved poller token for the listening socket.
const TOK_LISTENER: usize = 0;
/// Reserved poller token for the waker's receive side.
const TOK_WAKER: usize = 1;
/// First token handed to a client connection.
const TOK_FIRST_CONN: usize = 2;

/// The worker-facing half of a reactor connection: where replies go.
pub(crate) struct ReactorConn {
    /// Encoded frames spooled by workers, drained by the reactor.
    outbox: Mutex<Vec<u8>>,
    /// Admitted-but-unanswered requests on this connection.
    outstanding: AtomicUsize,
    /// Set when the transport died; late replies become no-ops instead of
    /// growing an outbox nobody will ever flush.
    dead: AtomicBool,
    waker: Arc<Waker>,
}

impl ReplyTo for ReactorConn {
    fn send(&self, frame: &Frame) {
        if self.dead.load(Ordering::SeqCst) {
            return;
        }
        let bytes = encode_frame(frame);
        self.outbox
            .lock()
            .expect("reactor outbox poisoned")
            .extend_from_slice(&bytes);
        self.waker.wake();
    }

    fn outstanding(&self) -> &AtomicUsize {
        &self.outstanding
    }
}

/// Reactor-side connection state machine.
struct Conn {
    stream: TcpStream,
    inbuf: FrameBuf,
    wbuf: WriteBuf,
    shared_conn: Arc<ReactorConn>,
    /// Trait-object clone handed to `admit` (admission clones it into each
    /// queued request).
    reply: Arc<dyn ReplyTo>,
    home: usize,
    last_activity: Instant,
    /// No more requests will be read (peer EOF, protocol desync, or
    /// server shutdown); the connection lingers until replies flush.
    read_closed: bool,
    /// Transport failed; reap immediately.
    dead: bool,
    /// Interest currently registered with the poller (`None` = not
    /// registered).
    registered: Option<Interest>,
}

impl Conn {
    fn desired_interest(&self) -> Option<Interest> {
        let want_read = !self.read_closed && !self.dead;
        let want_write = !self.dead && !self.wbuf.is_empty();
        match (want_read, want_write) {
            (true, true) => Some(Interest::ReadWrite),
            (true, false) => Some(Interest::Read),
            (false, true) => Some(Interest::Write),
            (false, false) => None,
        }
    }
}

/// Runs until shutdown is observed **and** every admitted request has been
/// answered and flushed (bounded by [`DRAIN_CAP`]).
pub(crate) fn reactor_loop(listener: TcpListener, shared: &Arc<Shared>, waker: &Arc<Waker>) {
    let mut poller = Poller::new();
    poller.register(TOK_LISTENER, listener.as_raw_fd(), Interest::Read);
    poller.register(TOK_WAKER, waker.fd(), Interest::Read);

    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut events = Vec::new();
    let mut next_token = TOK_FIRST_CONN;
    let mut accepting = true;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let shutting = shared.shutdown.load(Ordering::SeqCst);
        if shutting && accepting {
            accepting = false;
            poller.deregister(TOK_LISTENER);
            drain_deadline = Some(Instant::now() + DRAIN_CAP);
            for c in conns.values_mut() {
                c.read_closed = true;
            }
        }

        if poller.wait(&mut events, Some(POLL)).is_err() {
            // Defensive: wait() only fails on unsupported hosts, where the
            // reactor is never constructed. Avoid a hot spin regardless.
            std::thread::sleep(POLL);
        }

        for ev in &events {
            match ev.token {
                TOK_LISTENER => {
                    if accepting {
                        accept_ready(
                            &listener,
                            shared,
                            waker,
                            &mut poller,
                            &mut conns,
                            &mut next_token,
                        );
                    }
                }
                TOK_WAKER => waker.drain(),
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if ev.readable && !conn.read_closed && !conn.dead {
                            handle_readable(conn, shared);
                        }
                        if ev.error && !ev.readable {
                            conn.dead = true;
                        }
                    }
                }
            }
        }

        // Maintenance pass: spool outboxes, flush, fix interest, reap.
        let now = Instant::now();
        let mut reap: Vec<usize> = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            {
                let mut outbox = conn
                    .shared_conn
                    .outbox
                    .lock()
                    .expect("reactor outbox poisoned");
                if !outbox.is_empty() {
                    conn.wbuf.queue(&outbox);
                    outbox.clear();
                    conn.last_activity = now;
                }
            }
            if !conn.dead && !conn.wbuf.is_empty() {
                // flush_to maps WouldBlock to Ok(false); a real error means
                // the transport died under us.
                if conn.wbuf.flush_to(&mut conn.stream).is_err() {
                    conn.dead = true;
                }
            }
            if should_reap(conn, shared, shutting, now) {
                reap.push(token);
            } else {
                let want = conn.desired_interest();
                if want != conn.registered {
                    match (want, conn.registered) {
                        (Some(i), Some(_)) => poller.reregister(token, i),
                        (Some(i), None) => poller.register(token, conn.stream.as_raw_fd(), i),
                        (None, Some(_)) => poller.deregister(token),
                        (None, None) => {}
                    }
                    conn.registered = want;
                }
            }
        }
        for token in reap {
            if let Some(conn) = conns.remove(&token) {
                if conn.registered.is_some() {
                    poller.deregister(token);
                }
                conn.shared_conn.dead.store(true, Ordering::SeqCst);
                shared
                    .stats
                    .active_connections
                    .fetch_sub(1, Ordering::Relaxed);
            }
        }

        if shutting {
            let outstanding: usize = conns
                .values()
                .map(|c| c.shared_conn.outstanding.load(Ordering::SeqCst))
                .sum();
            let buffered = conns.values().any(|c| {
                !c.wbuf.is_empty()
                    || !c
                        .shared_conn
                        .outbox
                        .lock()
                        .expect("reactor outbox poisoned")
                        .is_empty()
            });
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if (outstanding == 0 && !buffered) || expired {
                break;
            }
        }
    }

    for (_, conn) in conns.drain() {
        conn.shared_conn.dead.store(true, Ordering::SeqCst);
        shared
            .stats
            .active_connections
            .fetch_sub(1, Ordering::Relaxed);
    }
}

fn accept_ready(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    waker: &Arc<Waker>,
    poller: &mut Poller,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if conns.len() >= shared.cfg.max_connections {
                    // Reject by dropping: the kernel sends RST/FIN and the
                    // client sees a closed connection, not a hung one.
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                let shared_conn = Arc::new(ReactorConn {
                    outbox: Mutex::new(Vec::new()),
                    outstanding: AtomicUsize::new(0),
                    dead: AtomicBool::new(false),
                    waker: Arc::clone(waker),
                });
                let reply: Arc<dyn ReplyTo> = Arc::clone(&shared_conn) as Arc<dyn ReplyTo>;
                poller.register(token, stream.as_raw_fd(), Interest::Read);
                shared.stats.connection_opened();
                conns.insert(
                    token,
                    Conn {
                        stream,
                        inbuf: FrameBuf::new(),
                        wbuf: WriteBuf::new(),
                        shared_conn,
                        reply,
                        home: shared.next_home_shard(),
                        last_activity: Instant::now(),
                        read_closed: false,
                        dead: false,
                        registered: Some(Interest::Read),
                    },
                );
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// One bounded read plus a parse sweep over whatever is buffered.
fn handle_readable(conn: &mut Conn, shared: &Arc<Shared>) {
    match conn.inbuf.read_from(&mut conn.stream) {
        Ok(ReadOutcome::Data(_)) => {
            conn.last_activity = Instant::now();
            parse_frames(conn, shared);
        }
        Ok(ReadOutcome::WouldBlock) => {}
        Ok(ReadOutcome::Eof) => {
            // Keep the connection until buffered replies flush.
            conn.read_closed = true;
        }
        Err(_) => conn.dead = true,
    }
}

/// Decodes every complete frame in the input buffer. Partial frames stay
/// buffered for the next readable tick — that is the whole slow-client
/// story: no thread waits on them.
fn parse_frames(conn: &mut Conn, shared: &Arc<Shared>) {
    loop {
        let buf = conn.inbuf.bytes();
        if buf.len() < HEADER_LEN {
            return;
        }
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&buf[..HEADER_LEN]);
        let parsed = crate::protocol::parse_header(&header, shared.cfg.max_payload);
        let FrameHeader {
            ty,
            request_id,
            payload_len,
        } = match parsed {
            Ok(h) => h,
            Err(WireError::Malformed {
                request_id, reason, ..
            }) => {
                // Header-level violations always desync the stream.
                Stats::bump(&shared.stats.rejected_malformed);
                send_error(&*conn.reply, request_id, ErrorCode::Malformed, reason);
                conn.read_closed = true;
                return;
            }
            Err(WireError::Io(_)) => unreachable!("parse_header performs no I/O"),
        };
        let total = HEADER_LEN + payload_len;
        if buf.len() < total {
            return; // partial body: wait for more bytes
        }
        let decoded = decode_frame(ty, request_id, &buf[HEADER_LEN..total]);
        conn.inbuf.consume(total);
        match decoded {
            Ok(Frame::InferRequest(req)) => admit(req, &conn.reply, conn.home, shared),
            Ok(Frame::StatsRequest(id)) => {
                conn.reply
                    .send(&Frame::StatsResponse(id, shared.snapshot()));
            }
            Ok(other) => {
                Stats::bump(&shared.stats.rejected_malformed);
                send_error(
                    &*conn.reply,
                    other.request_id(),
                    ErrorCode::Malformed,
                    "unexpected frame type from client",
                );
            }
            Err(WireError::Malformed {
                request_id,
                recoverable,
                reason,
            }) => {
                Stats::bump(&shared.stats.rejected_malformed);
                send_error(&*conn.reply, request_id, ErrorCode::Malformed, reason);
                if !recoverable {
                    conn.read_closed = true;
                    return;
                }
            }
            Err(WireError::Io(_)) => unreachable!("decode_frame performs no I/O"),
        }
    }
}

/// Whether a connection is finished. Evaluation order matters: observe
/// `outstanding == 0` **before** checking the outbox, so the
/// decrement-after-send discipline guarantees no reply can be lost.
fn should_reap(conn: &Conn, shared: &Arc<Shared>, shutting: bool, now: Instant) -> bool {
    if conn.dead {
        return true;
    }
    let quiescent = conn.shared_conn.outstanding.load(Ordering::SeqCst) == 0
        && conn
            .shared_conn
            .outbox
            .lock()
            .expect("reactor outbox poisoned")
            .is_empty()
        && conn.wbuf.is_empty();
    if conn.read_closed && quiescent {
        return true;
    }
    if !shutting && !conn.read_closed && quiescent && conn.inbuf.is_empty() {
        if let Some(limit) = shared.cfg.idle_timeout {
            if now.duration_since(conn.last_activity) >= limit {
                Stats::bump(&shared.stats.idle_reaped);
                return true;
            }
        }
    }
    false
}
