//! Lock-free server statistics.
//!
//! Counters are plain relaxed atomics — every update site is a single
//! increment/add, and the snapshot is advisory observability data, not a
//! synchronization point. The snapshot struct itself lives in
//! [`crate::protocol`] so it can travel over the wire.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::protocol::StatsSnapshot;

/// Shared mutable statistics, updated by acceptor/reader/worker threads.
#[derive(Debug, Default)]
pub struct Stats {
    /// Inference frames parsed.
    pub received: AtomicU64,
    /// Requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests answered with logits.
    pub completed: AtomicU64,
    /// `Overloaded` rejections.
    pub rejected_overload: AtomicU64,
    /// `Malformed` replies.
    pub rejected_malformed: AtomicU64,
    /// `UnknownModel` replies.
    pub rejected_unknown_model: AtomicU64,
    /// Deadline expiries at dequeue.
    pub expired: AtomicU64,
    /// `BadInput` execution failures.
    pub failed: AtomicU64,
    /// Nanoseconds completed requests spent queued.
    pub queue_wait_ns: AtomicU64,
    /// Nanoseconds completed requests spent executing.
    pub service_ns: AtomicU64,
    /// Micro-batches executed.
    pub batches: AtomicU64,
    /// Requests executed across all micro-batches.
    pub batch_requests: AtomicU64,
}

impl Stats {
    /// Adds one to `counter`.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `v` to `counter`.
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy; `queue_depth_hwm` is owned by the queue, so
    /// the caller passes it in.
    pub fn snapshot(&self, queue_depth_hwm: u64) -> StatsSnapshot {
        StatsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_malformed: self.rejected_malformed.load(Ordering::Relaxed),
            rejected_unknown_model: self.rejected_unknown_model.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth_hwm,
            queue_wait_ns: self.queue_wait_ns.load(Ordering::Relaxed),
            service_ns: self.service_ns.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_requests: self.batch_requests.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = Stats::default();
        Stats::bump(&s.received);
        Stats::bump(&s.accepted);
        Stats::add(&s.queue_wait_ns, 250);
        let snap = s.snapshot(5);
        assert_eq!(snap.received, 1);
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.queue_wait_ns, 250);
        assert_eq!(snap.queue_depth_hwm, 5);
    }
}
