//! Lock-free server statistics.
//!
//! Counters are plain relaxed atomics — every update site is a single
//! increment/add, and the snapshot is advisory observability data, not a
//! synchronization point. The snapshot struct itself lives in
//! [`crate::protocol`] so it can travel over the wire.

use std::sync::atomic::{AtomicU64, Ordering};

use acoustic_runtime::{DedupStats, PrepareStats};

use crate::protocol::StatsSnapshot;

/// Shared mutable statistics, updated by acceptor/reader/worker threads.
#[derive(Debug, Default)]
pub struct Stats {
    /// Inference frames parsed.
    pub received: AtomicU64,
    /// Requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests answered with logits.
    pub completed: AtomicU64,
    /// `Overloaded` rejections.
    pub rejected_overload: AtomicU64,
    /// `Malformed` replies.
    pub rejected_malformed: AtomicU64,
    /// `UnknownModel` replies.
    pub rejected_unknown_model: AtomicU64,
    /// Rejections because one model's admission sub-budget was exhausted
    /// (the shared queue still had room).
    pub rejected_model_budget: AtomicU64,
    /// Deadline expiries at dequeue.
    pub expired: AtomicU64,
    /// `BadInput` execution failures.
    pub failed: AtomicU64,
    /// Nanoseconds completed requests spent queued.
    pub queue_wait_ns: AtomicU64,
    /// Nanoseconds completed requests spent executing.
    pub service_ns: AtomicU64,
    /// Micro-batches executed.
    pub batches: AtomicU64,
    /// Requests executed across all micro-batches.
    pub batch_requests: AtomicU64,
    /// MAC lanes whose word work actually ran.
    pub mac_lanes: AtomicU64,
    /// OR groups that saturated before their last lane.
    pub sat_group_exits: AtomicU64,
    /// Lanes skipped because their OR group had saturated.
    pub sat_lanes_skipped: AtomicU64,
    /// Lanes skipped because the activation segment was all zero.
    pub zero_seg_skips: AtomicU64,
    /// Image tiles executed through the tiled MAC path.
    pub tiles: AtomicU64,
    /// Requests executed inside those tiles (the rest ran solo).
    pub tiled_requests: AtomicU64,
    /// Kernel-tier code (`KernelKind::code`) of the autotuned plan of the
    /// most recently executed model — a gauge, not a counter. On a
    /// multi-model server this tracks whichever model ran last.
    pub plan_kernel: AtomicU64,
    /// Tile width of that plan (0 until the first micro-batch runs).
    pub plan_tile: AtomicU64,
    /// `ShuttingDown` rejections (request arrived after the queue closed).
    pub rejected_shutdown: AtomicU64,
    /// Currently open client connections (gauge: incremented on accept,
    /// decremented on close).
    pub active_connections: AtomicU64,
    /// Highest concurrent open-connection count observed.
    pub active_connections_hwm: AtomicU64,
    /// Connections accepted since startup.
    pub conns_opened: AtomicU64,
    /// Idle connections closed by the reactor's idle timeout.
    pub idle_reaped: AtomicU64,
    /// `Warming` rejections (the model's prepare was still running on the
    /// background compile thread).
    pub rejected_warming: AtomicU64,
}

/// Queue- and I/O-layer gauges owned by the queue/reactor rather than the
/// [`Stats`] atomics, sampled by the caller at snapshot time.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueGauges {
    /// Highest total queue depth observed.
    pub queue_depth_hwm: u64,
    /// Admission-queue shard count.
    pub shards: u64,
    /// Highest single-shard depth observed.
    pub shard_depth_hwm: u64,
    /// Cross-shard steals performed by workers.
    pub queue_steals: u64,
    /// 1 when the readiness reactor drives I/O, 0 for the threaded path.
    pub reactor_mode: u64,
}

impl Stats {
    /// Adds one to `counter`.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `v` to `counter`.
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a newly accepted connection: bumps the open/total counters
    /// and advances the concurrent-connection high-water mark.
    pub fn connection_opened(&self) {
        Stats::bump(&self.conns_opened);
        let now = self.active_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.active_connections_hwm
            .fetch_max(now, Ordering::Relaxed);
    }

    /// A point-in-time copy; queue/reactor gauges are owned by the queue
    /// and `dedup`/`prepare` by the model cache (sampled by the caller at
    /// snapshot time), so they are passed in.
    pub fn snapshot(
        &self,
        gauges: QueueGauges,
        dedup: DedupStats,
        prepare: PrepareStats,
    ) -> StatsSnapshot {
        StatsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_malformed: self.rejected_malformed.load(Ordering::Relaxed),
            rejected_unknown_model: self.rejected_unknown_model.load(Ordering::Relaxed),
            rejected_model_budget: self.rejected_model_budget.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth_hwm: gauges.queue_depth_hwm,
            queue_wait_ns: self.queue_wait_ns.load(Ordering::Relaxed),
            service_ns: self.service_ns.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_requests: self.batch_requests.load(Ordering::Relaxed),
            mac_lanes: self.mac_lanes.load(Ordering::Relaxed),
            sat_group_exits: self.sat_group_exits.load(Ordering::Relaxed),
            sat_lanes_skipped: self.sat_lanes_skipped.load(Ordering::Relaxed),
            zero_seg_skips: self.zero_seg_skips.load(Ordering::Relaxed),
            tiles: self.tiles.load(Ordering::Relaxed),
            tiled_requests: self.tiled_requests.load(Ordering::Relaxed),
            plan_kernel: self.plan_kernel.load(Ordering::Relaxed),
            plan_tile: self.plan_tile.load(Ordering::Relaxed),
            distinct_streams: dedup.distinct_streams,
            pool_bytes: dedup.pool_bytes,
            index_bytes: dedup.index_bytes,
            materialized_bytes: dedup.materialized_bytes,
            resident_bytes: dedup.resident_bytes,
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            shards: gauges.shards,
            shard_depth_hwm: gauges.shard_depth_hwm,
            queue_steals: gauges.queue_steals,
            active_connections: self.active_connections.load(Ordering::Relaxed),
            active_connections_hwm: self.active_connections_hwm.load(Ordering::Relaxed),
            conns_opened: self.conns_opened.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
            reactor_mode: gauges.reactor_mode,
            rejected_warming: self.rejected_warming.load(Ordering::Relaxed),
            prepares_completed: prepare.prepares_completed,
            prepare_ms_total: prepare.prepare_ns_total / 1_000_000,
            prepares_in_flight: prepare.prepares_in_flight,
        }
    }

    /// Folds one micro-batch's kernel counters into the server totals.
    pub fn absorb_kernel(&self, k: &acoustic_runtime::KernelCounters) {
        Stats::add(&self.mac_lanes, k.mac_lanes);
        Stats::add(&self.sat_group_exits, k.sat_group_exits);
        Stats::add(&self.sat_lanes_skipped, k.sat_lanes_skipped);
        Stats::add(&self.zero_seg_skips, k.zero_seg_skips);
        Stats::add(&self.tiles, k.tiles);
        Stats::add(&self.tiled_requests, k.tiled_images);
    }

    /// Records the autotuned plan of the model a micro-batch just ran on
    /// (last-writer-wins gauges).
    pub fn record_plan(&self, plan: &acoustic_runtime::TilePlan) {
        self.plan_kernel
            .store(plan.kernel.code(), Ordering::Relaxed);
        self.plan_tile.store(plan.tile as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = Stats::default();
        Stats::bump(&s.received);
        Stats::bump(&s.accepted);
        Stats::add(&s.queue_wait_ns, 250);
        let dedup = DedupStats {
            lanes: 10,
            distinct_streams: 4,
            pool_bytes: 512,
            index_bytes: 64,
            resident_bytes: 576,
            materialized_bytes: 2048,
        };
        Stats::bump(&s.rejected_shutdown);
        s.connection_opened();
        let gauges = QueueGauges {
            queue_depth_hwm: 5,
            shards: 2,
            shard_depth_hwm: 3,
            queue_steals: 4,
            reactor_mode: 1,
        };
        let prepare = PrepareStats {
            prepares_completed: 3,
            prepare_ns_total: 7_000_000,
            prepares_in_flight: 1,
        };
        Stats::bump(&s.rejected_warming);
        let snap = s.snapshot(gauges, dedup, prepare);
        assert_eq!(snap.received, 1);
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.queue_wait_ns, 250);
        assert_eq!(snap.queue_depth_hwm, 5);
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.shard_depth_hwm, 3);
        assert_eq!(snap.queue_steals, 4);
        assert_eq!(snap.reactor_mode, 1);
        assert_eq!(snap.rejected_shutdown, 1);
        assert_eq!(snap.conns_opened, 1);
        assert_eq!(snap.active_connections, 1);
        assert_eq!(snap.active_connections_hwm, 1);
        assert_eq!(snap.distinct_streams, 4);
        assert_eq!(snap.pool_bytes, 512);
        assert_eq!(snap.index_bytes, 64);
        assert_eq!(snap.materialized_bytes, 2048);
        assert_eq!(snap.resident_bytes, 576);
        assert_eq!(snap.rejected_warming, 1);
        assert_eq!(snap.prepares_completed, 3);
        assert_eq!(snap.prepare_ms_total, 7);
        assert_eq!(snap.prepares_in_flight, 1);
    }

    #[test]
    fn absorb_kernel_accumulates() {
        let s = Stats::default();
        let k = acoustic_runtime::KernelCounters {
            mac_lanes: 100,
            sat_group_exits: 4,
            sat_lanes_skipped: 20,
            zero_seg_skips: 5,
            tiles: 2,
            tiled_images: 7,
        };
        s.absorb_kernel(&k);
        s.absorb_kernel(&k);
        let snap = s.snapshot(
            QueueGauges::default(),
            DedupStats::default(),
            PrepareStats::default(),
        );
        assert_eq!(snap.mac_lanes, 200);
        assert_eq!(snap.sat_group_exits, 8);
        assert_eq!(snap.sat_lanes_skipped, 40);
        assert_eq!(snap.zero_seg_skips, 10);
        assert_eq!(snap.tiles, 4);
        assert_eq!(snap.tiled_requests, 14);
        assert!((snap.skip_fraction() - 50.0 / 250.0).abs() < 1e-12);
    }
}
