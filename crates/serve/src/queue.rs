//! A bounded multi-producer/multi-consumer request queue.
//!
//! This is the server's only buffer between admission and execution, and
//! it is deliberately small and *rejecting*: [`BoundedQueue::try_push`]
//! never blocks and never grows the queue past its capacity — a full queue
//! is an admission-control signal (`Overloaded`), not a reason to buffer.
//! Consumers pop with a timeout so micro-batch collection can wait "up to
//! T µs for more work" without spinning.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed for new work; the item is handed back.
    Closed(T),
}

/// The outcome of a timed pop.
#[derive(Debug)]
pub enum PopResult<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue empty (and still open).
    TimedOut,
    /// The queue is closed **and** fully drained — the consumer can exit.
    Drained,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Highest depth ever observed (after a push).
    hwm: usize,
}

/// A bounded MPMC queue built on `Mutex` + `Condvar` (std-only).
///
/// Closing the queue refuses further pushes but lets consumers drain what
/// is already queued: [`BoundedQueue::pop_timeout`] keeps returning items
/// until the queue is empty, then reports [`PopResult::Drained`]. That is
/// exactly the graceful-shutdown order the server needs.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
                hwm: 0,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking admission: enqueues `item` unless the queue is full or
    /// closed, in which case the item is returned in the error so the
    /// caller can answer the client.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity; [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        inner.hwm = inner.hwm.max(inner.items.len());
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues one item, waiting up to `timeout` for one to arrive.
    pub fn pop_timeout(&self, timeout: Duration) -> PopResult<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return PopResult::Item(item);
            }
            if inner.closed {
                return PopResult::Drained;
            }
            let (next, res) = self
                .not_empty
                .wait_timeout(inner, timeout)
                .expect("queue lock poisoned");
            inner = next;
            if res.timed_out() {
                return match inner.items.pop_front() {
                    Some(item) => PopResult::Item(item),
                    None if inner.closed => PopResult::Drained,
                    None => PopResult::TimedOut,
                };
            }
        }
    }

    /// Attempts an immediate dequeue (used to top up a forming
    /// micro-batch without waiting).
    pub fn try_pop(&self) -> Option<T> {
        self.inner
            .lock()
            .expect("queue lock poisoned")
            .items
            .pop_front()
    }

    /// Closes the queue: future pushes fail, consumers drain the backlog
    /// then observe [`PopResult::Drained`].
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest depth observed since creation.
    pub fn high_water_mark(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").hwm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_and_hwm() {
        let q = BoundedQueue::new(3);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.high_water_mark(), 2);
        assert!(matches!(q.pop_timeout(Duration::ZERO), PopResult::Item(1)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), PopResult::Item(2)));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            PopResult::TimedOut
        ));
        assert_eq!(q.high_water_mark(), 2, "hwm survives drain");
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2, "rejected item never entered the queue");
    }

    #[test]
    fn close_drains_then_reports_drained() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), PopResult::Item(7)));
        assert!(matches!(q.pop_timeout(Duration::ZERO), PopResult::Drained));
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(2));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match q2.pop_timeout(Duration::from_secs(5)) {
                    PopResult::Item(v) => got.push(v),
                    PopResult::Drained => break,
                    PopResult::TimedOut => panic!("consumer starved"),
                }
            }
            got
        });
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        // Give the consumer a chance to drain, then close.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![1, 2]);
    }
}
