//! Open-loop load generation and golden-response validation.
//!
//! The generator replays a Poisson arrival schedule (exponential
//! inter-arrival gaps at a target QPS, drawn from a deterministic seed)
//! against a running server, **open loop**: requests are sent at their
//! scheduled times whether or not earlier replies have arrived, so server
//! slowdown shows up as latency instead of silently throttling offered
//! load (no coordinated omission).
//!
//! Latency is measured from each request's *scheduled* arrival to the
//! moment its reply is read, and percentiles use the nearest-rank method.
//!
//! Because every response is a pure function of `(model, request id,
//! image)`, [`validate_responses`] can recompute each accepted response
//! locally through [`BatchEngine::run_ready`] and demand bit-identity.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acoustic_core::prng::splitmix64;
use acoustic_core::DetRng;
use acoustic_nn::Tensor;
use acoustic_runtime::{BatchEngine, PreparedModel, ReadyRequest};

use crate::client::{Client, InferReply};
use crate::protocol::{ErrorCode, InferRequest};
use crate::serve_error::ServeError;

/// How long, after the last request is sent, the generator waits for
/// stragglers before force-closing connections.
const GRACE: Duration = Duration::from_secs(5);

/// Load-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadGenConfig {
    /// Target offered load, requests per second.
    pub qps: f64,
    /// Total number of requests in the schedule.
    pub requests: u64,
    /// Client connections the schedule is spread over (round-robin).
    pub connections: usize,
    /// Seed for the arrival schedule.
    pub seed: u64,
    /// Model id to request.
    pub model_id: u32,
    /// Per-request deadline in µs (0 = server default).
    pub deadline_micros: u32,
    /// Optional fixed stream-length override.
    pub stream_len: Option<u32>,
    /// Optional early-exit margin override.
    pub margin: Option<f32>,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            qps: 50.0,
            requests: 100,
            connections: 2,
            seed: 7,
            model_id: crate::registry::DEMO_MODEL_ID,
            deadline_micros: 0,
            stream_len: None,
            margin: None,
        }
    }
}

/// One observed reply.
#[derive(Debug, Clone)]
pub struct ReplyRecord {
    /// The request id the reply answers.
    pub id: u64,
    /// What the server said.
    pub reply: InferReply,
    /// Scheduled-arrival → reply-read latency.
    pub latency: Duration,
}

/// Everything a load run produced.
#[derive(Debug)]
pub struct LoadOutcome {
    /// Every reply that was received, in arrival order per connection.
    pub replies: Vec<ReplyRecord>,
    /// Requests that never got a reply before the grace deadline.
    pub dropped: u64,
    /// Wall-clock time from first scheduled arrival to last reply.
    pub elapsed: Duration,
}

/// Aggregated metrics over a [`LoadOutcome`].
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Requests in the schedule.
    pub offered: u64,
    /// Requests answered with logits.
    pub completed: u64,
    /// `Overloaded` rejections.
    pub rejected_overload: u64,
    /// `DeadlineExceeded` replies.
    pub deadline_exceeded: u64,
    /// `Warming` bounces (cold model compiling in the background).
    pub warming: u64,
    /// Any other error reply.
    pub other_errors: u64,
    /// Requests with no reply at all.
    pub dropped: u64,
    /// p50 latency of completed requests, µs.
    pub p50_us: u64,
    /// p95 latency of completed requests, µs.
    pub p95_us: u64,
    /// p99 latency of completed requests, µs.
    pub p99_us: u64,
    /// Completed requests per second of wall-clock.
    pub goodput_qps: f64,
    /// Fraction of offered requests rejected for overload.
    pub rejection_rate: f64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// One model's share of mixed-model traffic.
#[derive(Debug, Clone)]
pub struct ModelTraffic {
    /// Model id to request.
    pub model_id: u32,
    /// Relative traffic weight (must be ≥ 1).
    pub weight: u32,
    /// Input images for this model (request `id` sends image
    /// `id % images.len()`), matching the model's input shape.
    pub images: Vec<Tensor>,
}

/// Parses a `--mix`-style spec: `model_id:weight` pairs separated by
/// commas, e.g. `1:3,2:1`. Image sets are attached by the caller.
///
/// # Errors
///
/// [`ServeError::InvalidConfig`] on malformed pairs, zero weights or
/// duplicate ids.
pub fn parse_mix(spec: &str) -> Result<Vec<(u32, u32)>, ServeError> {
    let bad = |msg: String| ServeError::InvalidConfig(msg);
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for part in spec.split(',') {
        let (id_str, w_str) = part
            .split_once(':')
            .ok_or_else(|| bad(format!("mix entry `{part}` is not model_id:weight")))?;
        let id: u32 = id_str
            .trim()
            .parse()
            .map_err(|_| bad(format!("bad model id `{id_str}` in mix")))?;
        let weight: u32 = w_str
            .trim()
            .parse()
            .map_err(|_| bad(format!("bad weight `{w_str}` in mix")))?;
        if weight == 0 {
            return Err(bad(format!("model {id} has zero weight in mix")));
        }
        if pairs.iter().any(|&(i, _)| i == id) {
            return Err(bad(format!("model {id} appears twice in mix")));
        }
        pairs.push((id, weight));
    }
    if pairs.is_empty() {
        return Err(bad("mix spec is empty".into()));
    }
    Ok(pairs)
}

/// The model a given schedule slot requests — a pure function of
/// `(seed, request id, mix weights)`, shared between the sender,
/// [`summarize_mix`] and [`validate_responses_mix`] so they cannot drift
/// apart.
pub fn model_for(seed: u64, request_id: u64, traffic: &[ModelTraffic]) -> u32 {
    let total: u64 = traffic.iter().map(|t| u64::from(t.weight)).sum();
    let mut state = seed ^ request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x4D1C_5EED_0000_00AB;
    let mut r = splitmix64(&mut state) % total.max(1);
    for t in traffic {
        let w = u64::from(t.weight);
        if r < w {
            return t.model_id;
        }
        r -= w;
    }
    traffic.last().map_or(0, |t| t.model_id)
}

/// Builds the mixed-traffic request a given schedule slot sends.
fn request_for_mix(id: u64, traffic: &[ModelTraffic], cfg: &LoadGenConfig) -> InferRequest {
    let model_id = model_for(cfg.seed, id, traffic);
    let entry = traffic
        .iter()
        .find(|t| t.model_id == model_id)
        .expect("model_for only returns ids from the traffic set");
    let img = &entry.images[(id % entry.images.len() as u64) as usize];
    InferRequest {
        request_id: id,
        model_id,
        deadline_micros: cfg.deadline_micros,
        stream_len: cfg.stream_len,
        margin: cfg.margin,
        shape: img.shape().iter().map(|&d| d as u32).collect(),
        values: img.as_slice().to_vec(),
    }
}

/// Builds the request a given schedule slot sends — shared between the
/// sender and [`validate_responses`] so they cannot drift apart.
fn request_for(id: u64, images: &[Tensor], cfg: &LoadGenConfig) -> InferRequest {
    let img = &images[(id % images.len() as u64) as usize];
    InferRequest {
        request_id: id,
        model_id: cfg.model_id,
        deadline_micros: cfg.deadline_micros,
        stream_len: cfg.stream_len,
        margin: cfg.margin,
        shape: img.shape().iter().map(|&d| d as u32).collect(),
        values: img.as_slice().to_vec(),
    }
}

/// The Poisson arrival offsets for `cfg` (deterministic in `cfg.seed`).
pub fn arrival_schedule(cfg: &LoadGenConfig) -> Vec<Duration> {
    let mut rng = DetRng::seed_from_u64(cfg.seed);
    let mut t = 0.0_f64;
    (0..cfg.requests)
        .map(|_| {
            // Exponential gap with mean 1/qps; 1-u keeps ln's argument > 0.
            let u = rng.next_f64();
            t += -(1.0 - u).ln() / cfg.qps;
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// Replays the schedule against `addr` and collects every reply.
///
/// # Errors
///
/// Connection failures and invalid configs; per-request errors are data in
/// the outcome, not `Err`s.
pub fn run_load(
    addr: SocketAddr,
    images: &[Tensor],
    cfg: &LoadGenConfig,
) -> Result<LoadOutcome, ServeError> {
    if images.is_empty() {
        return Err(ServeError::InvalidConfig(
            "load generation needs at least one image".into(),
        ));
    }
    run_load_with(addr, cfg, |id| request_for(id, images, cfg))
}

/// Replays the schedule with mixed-model traffic: each slot's model is
/// drawn from the weighted `traffic` set (deterministically in
/// `cfg.seed`; `cfg.model_id` is ignored).
///
/// # Errors
///
/// As [`run_load`]; additionally rejects an empty traffic set or traffic
/// entries without images.
pub fn run_load_mix(
    addr: SocketAddr,
    traffic: &[ModelTraffic],
    cfg: &LoadGenConfig,
) -> Result<LoadOutcome, ServeError> {
    if traffic.is_empty() || traffic.iter().any(|t| t.images.is_empty() || t.weight == 0) {
        return Err(ServeError::InvalidConfig(
            "mixed load generation needs a non-empty traffic set with images and weights ≥ 1"
                .into(),
        ));
    }
    run_load_with(addr, cfg, |id| request_for_mix(id, traffic, cfg))
}

/// Shared open-loop replay core: `build` maps a schedule slot to the
/// request it sends.
fn run_load_with(
    addr: SocketAddr,
    cfg: &LoadGenConfig,
    build: impl Fn(u64) -> InferRequest + Sync,
) -> Result<LoadOutcome, ServeError> {
    if cfg.requests == 0 || cfg.connections == 0 || cfg.qps <= 0.0 || !cfg.qps.is_finite() {
        return Err(ServeError::InvalidConfig(
            "load generation needs requests ≥ 1, connections ≥ 1 and qps > 0".into(),
        ));
    }
    let schedule = arrival_schedule(cfg);
    let conns = cfg.connections.min(cfg.requests as usize);

    // Connect everything before starting the clock.
    let clients: Vec<Client> = (0..conns)
        .map(|_| Client::connect(addr))
        .collect::<Result<_, _>>()?;

    let received = AtomicU64::new(0);
    let start = Instant::now();
    let mut replies: Vec<ReplyRecord> = Vec::new();
    let mut last_reply = start;

    std::thread::scope(|scope| -> Result<(), ServeError> {
        let mut receivers = Vec::with_capacity(conns);
        let mut streams = Vec::with_capacity(conns);
        for (c, client) in clients.into_iter().enumerate() {
            let reader = client.try_clone()?;
            streams.push(client);
            let expect = (cfg.requests as usize + conns - 1 - c) / conns;
            let received = &received;
            let schedule = &schedule;
            receivers.push(
                scope.spawn(move || receiver_loop(reader, expect, schedule, start, received)),
            );
        }

        let mut senders = Vec::with_capacity(conns);
        for (c, mut client) in streams.into_iter().enumerate() {
            let schedule = &schedule;
            let build = &build;
            senders.push(scope.spawn(move || -> Client {
                for id in ((c as u64)..cfg.requests).step_by(conns) {
                    let target = start + schedule[id as usize];
                    let now = Instant::now();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                    let req = build(id);
                    if client
                        .send(&crate::protocol::Frame::InferRequest(req))
                        .is_err()
                    {
                        break;
                    }
                }
                client
            }));
        }

        // Once every sender is done, give stragglers a bounded grace
        // window, then force receivers out of their blocking reads.
        let mut held = Vec::with_capacity(conns);
        for s in senders {
            held.push(s.join().expect("sender thread panicked"));
        }
        let grace_deadline = Instant::now() + GRACE;
        while received.load(Ordering::SeqCst) < cfg.requests && Instant::now() < grace_deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        for client in &held {
            client.shutdown_read();
        }
        for r in receivers {
            let (mut got, last) = r.join().expect("receiver thread panicked");
            replies.append(&mut got);
            if let Some(last) = last {
                last_reply = last_reply.max(last);
            }
        }
        drop(held);
        Ok(())
    })?;

    let dropped = cfg.requests - replies.len() as u64;
    Ok(LoadOutcome {
        replies,
        dropped,
        elapsed: last_reply.duration_since(start),
    })
}

fn receiver_loop(
    mut reader: Client,
    expect: usize,
    schedule: &[Duration],
    start: Instant,
    received: &AtomicU64,
) -> (Vec<ReplyRecord>, Option<Instant>) {
    let mut got = Vec::with_capacity(expect);
    let mut last = None;
    while got.len() < expect {
        let frame = match reader.recv() {
            Ok(f) => f,
            Err(_) => break, // socket shut down by the grace watchdog
        };
        let now = Instant::now();
        let (id, reply) = match frame {
            crate::protocol::Frame::InferResponse(r) => (r.request_id, InferReply::Ok(r)),
            crate::protocol::Frame::Error(e) => (e.request_id, InferReply::Err(e)),
            _ => continue,
        };
        let scheduled = start + schedule[id as usize];
        got.push(ReplyRecord {
            id,
            reply,
            latency: now.saturating_duration_since(scheduled),
        });
        last = Some(now);
        received.fetch_add(1, Ordering::SeqCst);
    }
    (got, last)
}

/// Nearest-rank percentile of an unsorted latency set, in microseconds.
fn percentile_us(sorted: &[Duration], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1].as_micros() as u64
}

/// Aggregates a [`LoadOutcome`] into headline metrics.
pub fn summarize(outcome: &LoadOutcome, offered: u64) -> LoadReport {
    let mut completed_lat: Vec<Duration> = Vec::new();
    let mut rejected_overload = 0u64;
    let mut deadline_exceeded = 0u64;
    let mut warming = 0u64;
    let mut other_errors = 0u64;
    for r in &outcome.replies {
        match &r.reply {
            InferReply::Ok(_) => completed_lat.push(r.latency),
            InferReply::Err(e) if e.code == ErrorCode::Overloaded => rejected_overload += 1,
            InferReply::Err(e) if e.code == ErrorCode::DeadlineExceeded => deadline_exceeded += 1,
            InferReply::Err(e) if e.code == ErrorCode::Warming => warming += 1,
            InferReply::Err(_) => other_errors += 1,
        }
    }
    completed_lat.sort_unstable();
    let completed = completed_lat.len() as u64;
    let secs = outcome.elapsed.as_secs_f64();
    LoadReport {
        offered,
        completed,
        rejected_overload,
        deadline_exceeded,
        warming,
        other_errors,
        dropped: outcome.dropped,
        p50_us: percentile_us(&completed_lat, 50.0),
        p95_us: percentile_us(&completed_lat, 95.0),
        p99_us: percentile_us(&completed_lat, 99.0),
        goodput_qps: if secs > 0.0 {
            completed as f64 / secs
        } else {
            0.0
        },
        rejection_rate: if offered > 0 {
            rejected_overload as f64 / offered as f64
        } else {
            0.0
        },
        elapsed: outcome.elapsed,
    }
}

/// Recomputes every completed reply locally and counts responses that are
/// **not** bit-identical to direct [`BatchEngine::run_ready`] evaluation.
///
/// `engine` must be configured like the server's (same exit policy);
/// `model` and `images` must match what the server registered.
///
/// # Errors
///
/// Propagates engine validation errors (never triggered by replies to
/// well-formed load-generator requests).
pub fn validate_responses(
    outcome: &LoadOutcome,
    model: &PreparedModel,
    engine: &BatchEngine,
    images: &[Tensor],
    cfg: &LoadGenConfig,
) -> Result<u64, ServeError> {
    let completed: Vec<_> = outcome
        .replies
        .iter()
        .filter_map(|r| match &r.reply {
            InferReply::Ok(resp) => Some(resp),
            InferReply::Err(_) => None,
        })
        .collect();
    if completed.is_empty() {
        return Ok(0);
    }
    let requests: Vec<ReadyRequest<'_>> = completed
        .iter()
        .map(|resp| ReadyRequest {
            image_index: resp.request_id,
            input: &images[(resp.request_id % images.len() as u64) as usize],
            stream_len: cfg.stream_len.map(|l| l as usize),
            margin: cfg.margin,
        })
        .collect();
    let golden = engine.run_ready(model, &requests)?;
    let mut mismatches = 0u64;
    for (resp, gold) in completed.iter().zip(golden) {
        let ok = match gold {
            Ok(g) => {
                g.effective_len as u32 == resp.effective_len
                    && g.logits.as_slice().len() == resp.logits.len()
                    && g.logits
                        .as_slice()
                        .iter()
                        .zip(&resp.logits)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            }
            Err(_) => false,
        };
        if !ok {
            mismatches += 1;
        }
    }
    Ok(mismatches)
}

/// Per-connection slice of a load report (persistent-connection mode).
#[derive(Debug, Clone, Copy)]
pub struct ConnectionReport {
    /// Connection index (requests are assigned round-robin by
    /// `id % connections`).
    pub connection: usize,
    /// Schedule slots sent on this connection.
    pub offered: u64,
    /// Requests answered with logits.
    pub completed: u64,
    /// Error replies of any code.
    pub errors: u64,
    /// Requests with no reply at all.
    pub dropped: u64,
    /// p50 latency of completed requests, µs.
    pub p50_us: u64,
    /// p99 latency of completed requests, µs.
    pub p99_us: u64,
}

/// Splits an outcome into per-connection reports using the same
/// round-robin assignment the sender used (`id % effective_connections`,
/// where the effective count is `connections.min(requests)`).
pub fn summarize_connections(outcome: &LoadOutcome, cfg: &LoadGenConfig) -> Vec<ConnectionReport> {
    let conns = cfg.connections.min(cfg.requests as usize).max(1);
    let mut lat: Vec<Vec<Duration>> = vec![Vec::new(); conns];
    let mut errors = vec![0u64; conns];
    let mut answered = vec![0u64; conns];
    for r in &outcome.replies {
        let c = (r.id % conns as u64) as usize;
        answered[c] += 1;
        match &r.reply {
            InferReply::Ok(_) => lat[c].push(r.latency),
            InferReply::Err(_) => errors[c] += 1,
        }
    }
    (0..conns)
        .map(|c| {
            // Round-robin share of the schedule: connection c sends ids
            // c, c+conns, c+2·conns, …
            let offered = (cfg.requests + conns as u64 - 1 - c as u64) / conns as u64;
            lat[c].sort_unstable();
            ConnectionReport {
                connection: c,
                offered,
                completed: lat[c].len() as u64,
                errors: errors[c],
                dropped: offered.saturating_sub(answered[c]),
                p50_us: percentile_us(&lat[c], 50.0),
                p99_us: percentile_us(&lat[c], 99.0),
            }
        })
        .collect()
}

/// Per-model slice of a mixed-traffic load report.
#[derive(Debug, Clone, Copy)]
pub struct ModelLoadReport {
    /// The model id.
    pub model_id: u32,
    /// Schedule slots assigned to this model.
    pub offered: u64,
    /// Requests answered with logits.
    pub completed: u64,
    /// `Overloaded` rejections (shared queue or this model's admission
    /// sub-budget — the wire code is the same).
    pub rejected_overload: u64,
    /// `DeadlineExceeded` replies.
    pub deadline_exceeded: u64,
    /// `Warming` bounces (cold model compiling in the background).
    pub warming: u64,
    /// Any other error reply.
    pub other_errors: u64,
    /// Requests with no reply at all.
    pub dropped: u64,
    /// p50 latency of completed requests, µs.
    pub p50_us: u64,
    /// p99 latency of completed requests, µs.
    pub p99_us: u64,
    /// Completed requests per second of wall-clock.
    pub goodput_qps: f64,
}

/// Splits a mixed-traffic outcome into per-model reports (in `traffic`
/// order), recomputing each slot's model with [`model_for`].
pub fn summarize_mix(
    outcome: &LoadOutcome,
    traffic: &[ModelTraffic],
    cfg: &LoadGenConfig,
) -> Vec<ModelLoadReport> {
    let secs = outcome.elapsed.as_secs_f64();
    traffic
        .iter()
        .map(|t| {
            let offered = (0..cfg.requests)
                .filter(|&id| model_for(cfg.seed, id, traffic) == t.model_id)
                .count() as u64;
            let mut lat: Vec<Duration> = Vec::new();
            let mut rejected_overload = 0u64;
            let mut deadline_exceeded = 0u64;
            let mut warming = 0u64;
            let mut other_errors = 0u64;
            let mut answered = 0u64;
            for r in &outcome.replies {
                if model_for(cfg.seed, r.id, traffic) != t.model_id {
                    continue;
                }
                answered += 1;
                match &r.reply {
                    InferReply::Ok(_) => lat.push(r.latency),
                    InferReply::Err(e) if e.code == ErrorCode::Overloaded => {
                        rejected_overload += 1;
                    }
                    InferReply::Err(e) if e.code == ErrorCode::DeadlineExceeded => {
                        deadline_exceeded += 1;
                    }
                    InferReply::Err(e) if e.code == ErrorCode::Warming => warming += 1,
                    InferReply::Err(_) => other_errors += 1,
                }
            }
            lat.sort_unstable();
            let completed = lat.len() as u64;
            ModelLoadReport {
                model_id: t.model_id,
                offered,
                completed,
                rejected_overload,
                deadline_exceeded,
                warming,
                other_errors,
                dropped: offered.saturating_sub(answered),
                p50_us: percentile_us(&lat, 50.0),
                p99_us: percentile_us(&lat, 99.0),
                goodput_qps: if secs > 0.0 {
                    completed as f64 / secs
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Mixed-traffic golden validation: recomputes every completed reply
/// against the prepared model its id deterministically maps to and counts
/// responses that are not bit-identical.
///
/// `models` pairs each traffic model id with the prepared model the server
/// holds for it (same weights, same sim config).
///
/// # Errors
///
/// [`ServeError::InvalidConfig`] when a traffic model id has no prepared
/// model; engine validation errors as in [`validate_responses`].
pub fn validate_responses_mix(
    outcome: &LoadOutcome,
    models: &[(u32, Arc<PreparedModel>)],
    engine: &BatchEngine,
    traffic: &[ModelTraffic],
    cfg: &LoadGenConfig,
) -> Result<u64, ServeError> {
    let mut mismatches = 0u64;
    for t in traffic {
        let (_, model) = models
            .iter()
            .find(|(id, _)| *id == t.model_id)
            .ok_or_else(|| {
                ServeError::InvalidConfig(format!("no prepared model for mix id {}", t.model_id))
            })?;
        let completed: Vec<_> = outcome
            .replies
            .iter()
            .filter(|r| model_for(cfg.seed, r.id, traffic) == t.model_id)
            .filter_map(|r| match &r.reply {
                InferReply::Ok(resp) => Some(resp),
                InferReply::Err(_) => None,
            })
            .collect();
        if completed.is_empty() {
            continue;
        }
        let requests: Vec<ReadyRequest<'_>> = completed
            .iter()
            .map(|resp| ReadyRequest {
                image_index: resp.request_id,
                input: &t.images[(resp.request_id % t.images.len() as u64) as usize],
                stream_len: cfg.stream_len.map(|l| l as usize),
                margin: cfg.margin,
            })
            .collect();
        let golden = engine.run_ready(model, &requests)?;
        for (resp, gold) in completed.iter().zip(golden) {
            let ok = match gold {
                Ok(g) => {
                    g.effective_len as u32 == resp.effective_len
                        && g.logits.as_slice().len() == resp.logits.len()
                        && g.logits
                            .as_slice()
                            .iter()
                            .zip(&resp.logits)
                            .all(|(a, b)| a.to_bits() == b.to_bits())
                }
                Err(_) => false,
            };
            if !ok {
                mismatches += 1;
            }
        }
    }
    Ok(mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_monotone() {
        let cfg = LoadGenConfig {
            qps: 100.0,
            requests: 32,
            seed: 9,
            ..LoadGenConfig::default()
        };
        let a = arrival_schedule(&cfg);
        let b = arrival_schedule(&cfg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Mean gap should be in the right ballpark for 100 QPS.
        let mean = a.last().unwrap().as_secs_f64() / a.len() as f64;
        assert!(mean > 0.001 && mean < 0.1, "mean gap {mean}");
    }

    #[test]
    fn mix_parsing_accepts_pairs_and_rejects_garbage() {
        assert_eq!(parse_mix("1:3,2:1").unwrap(), vec![(1, 3), (2, 1)]);
        assert_eq!(parse_mix(" 7 : 2 ").unwrap(), vec![(7, 2)]);
        assert!(parse_mix("").is_err());
        assert!(parse_mix("1").is_err());
        assert!(parse_mix("1:0").is_err());
        assert!(parse_mix("1:x").is_err());
        assert!(parse_mix("1:2,1:3").is_err());
    }

    #[test]
    fn model_for_is_deterministic_and_weight_proportional() {
        let traffic = vec![
            ModelTraffic {
                model_id: 1,
                weight: 3,
                images: Vec::new(),
            },
            ModelTraffic {
                model_id: 2,
                weight: 1,
                images: Vec::new(),
            },
        ];
        let picks: Vec<u32> = (0..4000).map(|id| model_for(42, id, &traffic)).collect();
        let again: Vec<u32> = (0..4000).map(|id| model_for(42, id, &traffic)).collect();
        assert_eq!(picks, again);
        let ones = picks.iter().filter(|&&m| m == 1).count() as f64 / picks.len() as f64;
        // 3:1 weights ⇒ ~75% model 1; allow generous slack for a 4k draw.
        assert!((0.70..0.80).contains(&ones), "model-1 share {ones}");
        assert!(picks.iter().all(|&m| m == 1 || m == 2));
    }

    #[test]
    fn connection_breakdown_accounts_for_every_slot() {
        use crate::protocol::InferResponse;
        let cfg = LoadGenConfig {
            requests: 10,
            connections: 3,
            ..LoadGenConfig::default()
        };
        // Ids 0..10 round-robin over 3 connections; leave ids 7 and 9
        // unanswered and make id 4 an error reply.
        let replies = (0..10u64)
            .filter(|id| *id != 7 && *id != 9)
            .map(|id| ReplyRecord {
                id,
                reply: if id == 4 {
                    InferReply::Err(crate::protocol::ErrorFrame {
                        request_id: id,
                        code: ErrorCode::Overloaded,
                        message: String::new(),
                    })
                } else {
                    InferReply::Ok(InferResponse {
                        request_id: id,
                        effective_len: 64,
                        logits: vec![0.0],
                    })
                },
                latency: Duration::from_micros(100 + id),
            })
            .collect();
        let outcome = LoadOutcome {
            replies,
            dropped: 2,
            elapsed: Duration::from_millis(10),
        };
        let per_conn = summarize_connections(&outcome, &cfg);
        assert_eq!(per_conn.len(), 3);
        // Connection 0 owns ids 0,3,6,9; id 9 dropped.
        assert_eq!(per_conn[0].offered, 4);
        assert_eq!(per_conn[0].completed, 3);
        assert_eq!(per_conn[0].dropped, 1);
        // Connection 1 owns ids 1,4,7; id 4 errored, id 7 dropped.
        assert_eq!(per_conn[1].offered, 3);
        assert_eq!(per_conn[1].completed, 1);
        assert_eq!(per_conn[1].errors, 1);
        assert_eq!(per_conn[1].dropped, 1);
        // Connection 2 owns ids 2,5,8 — all completed.
        assert_eq!(per_conn[2].offered, 3);
        assert_eq!(per_conn[2].completed, 3);
        assert_eq!(per_conn[2].dropped, 0);
        let offered: u64 = per_conn.iter().map(|c| c.offered).sum();
        assert_eq!(offered, cfg.requests);
        assert!(per_conn[2].p50_us >= 100);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let lat: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile_us(&lat, 50.0), 50);
        assert_eq!(percentile_us(&lat, 95.0), 95);
        assert_eq!(percentile_us(&lat, 99.0), 99);
        assert_eq!(percentile_us(&[], 50.0), 0);
        assert_eq!(percentile_us(&[Duration::from_micros(7)], 99.0), 7);
    }
}
