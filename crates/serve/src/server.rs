//! The TCP inference server.
//!
//! Thread anatomy (all `std::thread`, no external runtime):
//!
//! ```text
//! acceptor ──spawns──▶ one reader per connection
//!                          │  decode + validate + admission control
//!                          ▼
//!                 BoundedQueue (capacity = admission limit)
//!                          │  pop + micro-batch (≤ B requests or T µs)
//!                          ▼
//!                 worker pool ──▶ BatchEngine::run_ready_counted ──▶ reply
//! ```
//!
//! Guarantees:
//!
//! * **Admission control** — the queue is the only buffer; when it is
//!   full, requests are rejected immediately with `Overloaded`. Nothing
//!   in the server buffers an unbounded number of requests.
//! * **Deadlines** — each request's deadline (its own, or the server
//!   default) is enforced when a worker dequeues it: an expired request is
//!   answered with `DeadlineExceeded` without burning simulation time.
//! * **Determinism** — the request id doubles as the seed index, so a
//!   response is bit-identical to `BatchEngine::run` evaluating the same
//!   image at the same index, whatever the micro-batch composition,
//!   worker count or arrival order.
//! * **Graceful shutdown** — new work is refused, queued work is drained
//!   and answered, then threads are joined.

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use acoustic_nn::Tensor;
use acoustic_runtime::{BatchEngine, ExitPolicy, PreparedModel, ReadyRequest};

use crate::protocol::{
    decode_frame, write_frame, ErrorCode, ErrorFrame, Frame, FrameHeader, InferRequest,
    InferResponse, StatsSnapshot, WireError, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
};
use crate::queue::{BoundedQueue, PopResult, PushError};
use crate::registry::{ModelRegistry, RegistryError};
use crate::serve_error::ServeError;
use crate::stats::Stats;

/// How long blocked reads and queue pops wait before re-checking the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Hard cap on how long shutdown waits for in-flight requests to drain.
const DRAIN_CAP: Duration = Duration::from_secs(10);

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// `BatchEngine` threads inside each worker (1 = each worker is a
    /// serial lane; the worker pool itself is the parallelism).
    pub engine_workers: usize,
    /// Request-queue capacity — the admission limit.
    pub queue_capacity: usize,
    /// Micro-batch size cap (collect up to this many requests…).
    pub batch_max: usize,
    /// …or until this much time has passed since the first one, whichever
    /// comes first.
    pub batch_wait: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Per-frame payload cap handed to the protocol reader.
    pub max_payload: usize,
    /// Optional adaptive early-exit policy applied to requests without
    /// per-request overrides.
    pub exit_policy: Option<ExitPolicy>,
    /// Per-model admission sub-budget: how many **queued** requests one
    /// model id may hold at once, so a hot model cannot starve the others
    /// out of the shared queue. `None` derives
    /// `max(1, 2·queue_capacity / models)` — deliberately over-subscribed
    /// (sub-budgets sum to ~2× the queue) so a lone active model can
    /// still fill the whole queue; with a single registered model it
    /// never binds (its budget 2·capacity exceeds the queue itself).
    pub model_queue_share: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            engine_workers: 1,
            queue_capacity: 64,
            batch_max: 8,
            batch_wait: Duration::from_micros(500),
            default_deadline: Duration::from_millis(250),
            max_payload: DEFAULT_MAX_PAYLOAD,
            exit_policy: None,
            model_queue_share: None,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be ≥ 1".into()));
        }
        if self.engine_workers == 0 {
            return Err(ServeError::InvalidConfig(
                "engine_workers must be ≥ 1".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be ≥ 1".into(),
            ));
        }
        if self.batch_max == 0 {
            return Err(ServeError::InvalidConfig("batch_max must be ≥ 1".into()));
        }
        if self.default_deadline.is_zero() {
            return Err(ServeError::InvalidConfig(
                "default_deadline must be positive".into(),
            ));
        }
        if self.model_queue_share == Some(0) {
            return Err(ServeError::InvalidConfig(
                "model_queue_share must be ≥ 1 when set".into(),
            ));
        }
        Ok(())
    }
}

/// Per-connection state shared between its reader and the workers that
/// answer its requests.
#[derive(Debug)]
struct ConnShared {
    /// Write half; a mutex serializes replies from concurrent workers.
    writer: Mutex<TcpStream>,
    /// Admitted-but-unanswered requests on this connection.
    outstanding: AtomicUsize,
}

impl ConnShared {
    /// Sends a frame; write errors mean the client is gone and are
    /// swallowed (the per-request bookkeeping still runs).
    fn send(&self, frame: &Frame) {
        let mut w = self.writer.lock().expect("connection writer poisoned");
        let _ = write_frame(&mut *w, frame);
    }

    fn send_error(&self, request_id: u64, code: ErrorCode, message: impl Into<String>) {
        self.send(&Frame::Error(ErrorFrame {
            request_id,
            code,
            message: message.into(),
        }));
    }
}

/// An admitted request waiting in the queue.
#[derive(Debug)]
struct Pending {
    id: u64,
    model_id: u32,
    model: Arc<PreparedModel>,
    input: Tensor,
    stream_len: Option<usize>,
    margin: Option<f32>,
    admitted: Instant,
    deadline: Instant,
    conn: Arc<ConnShared>,
}

/// Everything the acceptor/reader/worker threads share.
struct Shared {
    registry: ModelRegistry,
    cfg: ServeConfig,
    queue: BoundedQueue<Pending>,
    stats: Stats,
    shutdown: AtomicBool,
    /// Queued requests per model id, bounded by `model_share` — one model
    /// cannot monopolize the shared queue. Incremented at admission,
    /// decremented at dequeue (the gate bounds queue occupancy, not
    /// in-service work, which `workers · batch_max` already caps).
    gates: HashMap<u32, AtomicUsize>,
    /// The per-model admission sub-budget every gate is checked against.
    model_share: usize,
}

impl Shared {
    /// Releases the queue slot a request's model gate held; called once
    /// per admitted request, when it leaves the queue (or bounces off a
    /// full/closed queue at admission).
    fn release_gate(&self, model_id: u32) {
        if let Some(gate) = self.gates.get(&model_id) {
            gate.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// The running server: bind with [`Server::start`], stop with
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr`, spawns the acceptor and worker pool, and returns a
    /// handle. Pass port 0 to let the OS pick (see
    /// [`ServerHandle::addr`]).
    ///
    /// # Errors
    ///
    /// Config validation and socket errors.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: ModelRegistry,
        cfg: ServeConfig,
    ) -> Result<ServerHandle, ServeError> {
        cfg.validate()?;
        if registry.is_empty() {
            return Err(ServeError::InvalidConfig(
                "cannot serve an empty model registry".into(),
            ));
        }
        // Engine construction validates engine_workers and the policy.
        build_engine(&cfg)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let model_share = cfg
            .model_queue_share
            .unwrap_or_else(|| (2 * cfg.queue_capacity / registry.len()).max(1));
        let gates = registry
            .ids()
            .into_iter()
            .map(|id| (id, AtomicUsize::new(0)))
            .collect();
        let shared = Arc::new(Shared {
            registry,
            cfg,
            queue: BoundedQueue::new(cfg.queue_capacity),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            gates,
            model_share,
        });
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            std::thread::Builder::new()
                .name("acoustic-serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared, &readers))
                .map_err(ServeError::Io)?
        };

        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("acoustic-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(ServeError::Io)
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(ServerHandle {
            addr: local_addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            readers,
        })
    }
}

/// Handle to a running server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("cfg", &self.cfg)
            .field("queue_len", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot(
            self.shared.queue.high_water_mark() as u64,
            self.shared.registry.cache().dedup_totals(),
        )
    }

    /// Current request-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Gracefully stops the server: refuse new work, answer everything
    /// already admitted, join every thread. Returns the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Readers wait for their connections' outstanding replies, so they
        // must be joined while the workers are still draining the queue.
        let readers = std::mem::take(&mut *self.readers.lock().expect("reader list poisoned"));
        for r in readers {
            let _ = r.join();
        }
        self.shared.queue.close();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.shutdown_impl();
        }
    }
}

fn build_engine(cfg: &ServeConfig) -> Result<BatchEngine, ServeError> {
    let engine = BatchEngine::new(cfg.engine_workers)?;
    Ok(match cfg.exit_policy {
        Some(p) => engine.with_exit_policy(p)?,
        None => engine,
    })
}

// --- acceptor -------------------------------------------------------------

fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                // Readers poll the shutdown flag between (and inside) reads.
                let _ = stream.set_read_timeout(Some(POLL));
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("acoustic-serve-conn".into())
                    .spawn(move || reader_loop(stream, &shared));
                match handle {
                    Ok(h) => readers.lock().expect("reader list poisoned").push(h),
                    Err(_) => { /* spawn failed; connection drops */ }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

// --- connection reader ----------------------------------------------------

/// Outcome of an interruptible exact read.
enum ReadExact {
    /// The buffer is full.
    Full,
    /// The shutdown flag was raised while waiting.
    Shutdown,
    /// The peer closed (or the transport failed).
    Closed,
}

/// `read_exact` that keeps partial progress across read timeouts so the
/// 25 ms shutdown-poll granularity never desynchronizes the frame stream
/// of a slow client.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> ReadExact {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadExact::Closed,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return ReadExact::Shutdown;
                }
            }
            Err(_) => return ReadExact::Closed,
        }
    }
    ReadExact::Full
}

/// One frame, interruptibly. `Ok(None)` means "stop reading" (peer gone or
/// shutting down).
fn read_frame_interruptible(
    stream: &mut TcpStream,
    max_payload: usize,
    shutdown: &AtomicBool,
) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_interruptible(stream, &mut header, shutdown) {
        ReadExact::Full => {}
        ReadExact::Shutdown | ReadExact::Closed => return Ok(None),
    }
    let FrameHeader {
        ty,
        request_id,
        payload_len,
    } = crate::protocol::parse_header(&header, max_payload)?;
    let mut payload = vec![0u8; payload_len];
    match read_exact_interruptible(stream, &mut payload, shutdown) {
        ReadExact::Full => {}
        ReadExact::Shutdown | ReadExact::Closed => return Ok(None),
    }
    decode_frame(ty, request_id, &payload).map(Some)
}

fn reader_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(ConnShared {
        writer: Mutex::new(writer),
        outstanding: AtomicUsize::new(0),
    });

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match read_frame_interruptible(&mut stream, shared.cfg.max_payload, &shared.shutdown) {
            Ok(None) => break,
            Ok(Some(Frame::InferRequest(req))) => admit(req, &conn, shared),
            Ok(Some(Frame::StatsRequest(id))) => {
                let snap = shared.stats.snapshot(
                    shared.queue.high_water_mark() as u64,
                    shared.registry.cache().dedup_totals(),
                );
                conn.send(&Frame::StatsResponse(id, snap));
            }
            Ok(Some(other)) => {
                // Server-bound streams carry requests only.
                Stats::bump(&shared.stats.rejected_malformed);
                conn.send_error(
                    other.request_id(),
                    ErrorCode::Malformed,
                    "unexpected frame type from client",
                );
            }
            Err(WireError::Malformed {
                request_id,
                recoverable,
                reason,
            }) => {
                Stats::bump(&shared.stats.rejected_malformed);
                conn.send_error(request_id, ErrorCode::Malformed, reason);
                if !recoverable {
                    break;
                }
            }
            Err(WireError::Io(_)) => break,
        }
    }

    // Drain: answered requests may still be in flight; give workers a
    // bounded window to finish before the connection closes.
    let drain_start = Instant::now();
    while conn.outstanding.load(Ordering::SeqCst) > 0 && drain_start.elapsed() < DRAIN_CAP {
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Validates a decoded request and runs admission control.
fn admit(req: InferRequest, conn: &Arc<ConnShared>, shared: &Arc<Shared>) {
    Stats::bump(&shared.stats.received);
    let id = req.request_id;

    let model = match shared.registry.resolve(req.model_id) {
        Ok(m) => m,
        Err(RegistryError::UnknownModel(_)) => {
            Stats::bump(&shared.stats.rejected_unknown_model);
            conn.send_error(
                id,
                ErrorCode::UnknownModel,
                format!("model {}", req.model_id),
            );
            return;
        }
        Err(e) => {
            // A registered model failed to (re)compile — an internal
            // fault, not a client mistake.
            Stats::bump(&shared.stats.failed);
            conn.send_error(id, ErrorCode::Internal, e.to_string());
            return;
        }
    };
    if req.values.iter().any(|v| !v.is_finite()) {
        Stats::bump(&shared.stats.failed);
        conn.send_error(id, ErrorCode::BadInput, "non-finite input values");
        return;
    }
    let shape: Vec<usize> = req.shape.iter().map(|&d| d as usize).collect();
    let input = match Tensor::from_vec(&shape, req.values) {
        Ok(t) => t,
        Err(e) => {
            Stats::bump(&shared.stats.failed);
            conn.send_error(id, ErrorCode::BadInput, e.to_string());
            return;
        }
    };
    let stream_len = req.stream_len.map(|l| l as usize);
    if let Some(len) = stream_len {
        // Fail fast instead of burning a queue slot on a doomed request.
        if !model.supported_lengths().contains(&len) {
            Stats::bump(&shared.stats.failed);
            conn.send_error(
                id,
                ErrorCode::BadInput,
                format!(
                    "stream length {len} not in supported prefixes {:?}",
                    model.supported_lengths()
                ),
            );
            return;
        }
    }

    let now = Instant::now();
    let deadline = if req.deadline_micros == 0 {
        shared.cfg.default_deadline
    } else {
        Duration::from_micros(u64::from(req.deadline_micros))
    };
    let pending = Pending {
        id,
        model_id: req.model_id,
        model,
        input,
        stream_len,
        margin: req.margin,
        admitted: now,
        deadline: now + deadline,
        conn: Arc::clone(conn),
    };

    // Per-model admission sub-budget, checked before the shared queue so
    // one model's burst is rejected while other models still get slots.
    let gate = shared
        .gates
        .get(&req.model_id)
        .expect("gate exists for every registered model");
    if gate.fetch_add(1, Ordering::SeqCst) >= shared.model_share {
        gate.fetch_sub(1, Ordering::SeqCst);
        Stats::bump(&shared.stats.rejected_model_budget);
        conn.send_error(
            id,
            ErrorCode::Overloaded,
            format!("model {} admission budget exhausted", req.model_id),
        );
        return;
    }

    // The reply (wherever it comes from) decrements `outstanding`, so the
    // increment must precede the push.
    conn.outstanding.fetch_add(1, Ordering::SeqCst);
    match shared.queue.try_push(pending) {
        Ok(()) => Stats::bump(&shared.stats.accepted),
        Err(PushError::Full(p)) => {
            shared.release_gate(p.model_id);
            conn.outstanding.fetch_sub(1, Ordering::SeqCst);
            Stats::bump(&shared.stats.rejected_overload);
            conn.send_error(id, ErrorCode::Overloaded, "request queue full");
        }
        Err(PushError::Closed(p)) => {
            shared.release_gate(p.model_id);
            conn.outstanding.fetch_sub(1, Ordering::SeqCst);
            conn.send_error(id, ErrorCode::ShuttingDown, "server shutting down");
        }
    }
}

// --- workers --------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    let engine = build_engine(&shared.cfg).expect("config validated at startup");
    loop {
        match shared.queue.pop_timeout(POLL) {
            PopResult::Drained => break,
            PopResult::TimedOut => continue,
            PopResult::Item(first) => {
                let batch = collect_batch(first, shared);
                execute_batch(batch, &engine, shared);
            }
        }
    }
}

/// Collects up to `batch_max` requests, waiting at most `batch_wait` past
/// the first one.
fn collect_batch(first: Pending, shared: &Arc<Shared>) -> Vec<Pending> {
    let cfg = &shared.cfg;
    let mut batch = vec![first];
    if cfg.batch_max > 1 {
        let horizon = Instant::now() + cfg.batch_wait;
        while batch.len() < cfg.batch_max {
            let now = Instant::now();
            if now >= horizon {
                break;
            }
            match shared.queue.pop_timeout(horizon - now) {
                PopResult::Item(r) => batch.push(r),
                PopResult::TimedOut | PopResult::Drained => break,
            }
        }
    }
    batch
}

fn execute_batch(batch: Vec<Pending>, engine: &BatchEngine, shared: &Arc<Shared>) {
    let dequeued = Instant::now();

    // The batch has left the queue; free its models' admission budgets.
    for p in &batch {
        shared.release_gate(p.model_id);
    }

    // Deadline enforcement happens here — an expired request is answered
    // without touching the simulator.
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    for p in batch {
        if dequeued > p.deadline {
            Stats::bump(&shared.stats.expired);
            p.conn.send_error(
                p.id,
                ErrorCode::DeadlineExceeded,
                "deadline expired in queue",
            );
            p.conn.outstanding.fetch_sub(1, Ordering::SeqCst);
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }

    // A micro-batch may span models; group per prepared model.
    let mut groups: Vec<(u64, Vec<Pending>)> = Vec::new();
    for p in live {
        let key = p.model.fingerprint();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, g)) => g.push(p),
            None => groups.push((key, vec![p])),
        }
    }

    for (_, group) in groups {
        Stats::bump(&shared.stats.batches);
        Stats::add(&shared.stats.batch_requests, group.len() as u64);
        let model = Arc::clone(&group[0].model);
        let requests: Vec<ReadyRequest<'_>> = group
            .iter()
            .map(|p| ReadyRequest {
                image_index: p.id,
                input: &p.input,
                stream_len: p.stream_len,
                margin: p.margin,
            })
            .collect();
        let started = Instant::now();
        let outcomes = engine
            .run_ready_counted(&model, &requests)
            .map(|(outs, kernel)| {
                shared.stats.absorb_kernel(&kernel);
                shared.stats.record_plan(&model.plan());
                outs
            });
        let service = started.elapsed();
        // Per-request service time inside a batch is not individually
        // measurable; attribute the batch mean to each request.
        let per_request_ns = (service.as_nanos() / group.len() as u128) as u64;

        match outcomes {
            Ok(outs) => {
                for (p, out) in group.iter().zip(outs) {
                    match out {
                        Ok(o) => {
                            Stats::bump(&shared.stats.completed);
                            Stats::add(
                                &shared.stats.queue_wait_ns,
                                (dequeued - p.admitted).as_nanos() as u64,
                            );
                            Stats::add(&shared.stats.service_ns, per_request_ns);
                            p.conn.send(&Frame::InferResponse(InferResponse {
                                request_id: p.id,
                                effective_len: o.effective_len as u32,
                                logits: o.logits.as_slice().to_vec(),
                            }));
                        }
                        Err(e) => {
                            Stats::bump(&shared.stats.failed);
                            p.conn.send_error(p.id, ErrorCode::BadInput, e.to_string());
                        }
                    }
                    p.conn.outstanding.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) => {
                // Up-front validation makes this unreachable for wire
                // requests; answer defensively rather than hanging clients.
                let msg = e.to_string();
                for p in &group {
                    Stats::bump(&shared.stats.failed);
                    p.conn.send_error(p.id, ErrorCode::Internal, msg.clone());
                    p.conn.outstanding.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }
}
