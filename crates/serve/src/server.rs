//! The TCP inference server.
//!
//! Two I/O paths share one execution core (all `std::thread`, no external
//! runtime):
//!
//! ```text
//! reactor (default) ── non-blocking accept + per-connection state machines
//!        │               driven by acoustic-net's readiness poller
//!        │  decode + validate + admission control
//!        ▼
//!   ShardedQueue (one shard per worker group, work-stealing,
//!        │         global capacity = admission limit)
//!        │  pop + micro-batch (≤ B requests or T µs)
//!        ▼
//!   worker pool ──▶ BatchEngine::run_ready_counted ──▶ reply bytes
//!        │                                              (reactor outbox /
//!        ▼                                               blocking write)
//!  threaded fallback ── thread-per-connection readers, as before, on
//!                       targets without the readiness syscall shim
//! ```
//!
//! Guarantees (identical across both paths, test-enforced):
//!
//! * **Admission control** — the sharded queue is the only buffer; when
//!   every shard is full, requests are rejected immediately with
//!   `Overloaded`. Nothing in the server buffers an unbounded number of
//!   requests.
//! * **Deadlines** — each request's deadline (its own, or the server
//!   default) is enforced when a worker dequeues it: an expired request is
//!   answered with `DeadlineExceeded` without burning simulation time.
//! * **Determinism** — the request id doubles as the seed index, so a
//!   response is bit-identical to `BatchEngine::run` evaluating the same
//!   image at the same index, whatever the I/O path, micro-batch
//!   composition, worker count, shard layout or arrival order.
//! * **Graceful shutdown** — new work is refused (`ShuttingDown`), queued
//!   work is drained and answered, then threads are joined. The drain
//!   invariant `completed + rejected + expired + failed == received`
//!   survives both paths.

use std::collections::{HashMap, HashSet};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use acoustic_net::{Poller, ShardPop, ShardPush, ShardedQueue, Topology, Waker};
use acoustic_nn::Tensor;
use acoustic_runtime::{BatchEngine, ExitPolicy, PreparedModel, ReadyRequest};

use crate::protocol::{
    decode_frame, write_frame, ErrorCode, ErrorFrame, Frame, FrameHeader, InferRequest,
    InferResponse, StatsSnapshot, WireError, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
};
use crate::registry::{ModelRegistry, RegistryError};
use crate::serve_error::ServeError;
use crate::stats::{QueueGauges, Stats};

/// How long blocked reads, queue pops and reactor ticks wait before
/// re-checking the shutdown flag.
pub(crate) const POLL: Duration = Duration::from_millis(25);

/// Hard cap on how long shutdown waits for in-flight requests to drain.
pub(crate) const DRAIN_CAP: Duration = Duration::from_secs(10);

/// Which I/O path drives client connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// Use the readiness reactor when the host supports it, the threaded
    /// path otherwise. The default.
    #[default]
    Auto,
    /// Require the non-blocking readiness reactor; startup fails on hosts
    /// without the polling syscall shim instead of silently degrading.
    Reactor,
    /// Force the thread-per-connection fallback path.
    Threaded,
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(IoModel::Auto),
            "reactor" => Ok(IoModel::Reactor),
            "threaded" => Ok(IoModel::Threaded),
            other => Err(format!(
                "unknown io model `{other}` (expected auto|reactor|threaded)"
            )),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// `BatchEngine` threads inside each worker (1 = each worker is a
    /// serial lane; the worker pool itself is the parallelism).
    pub engine_workers: usize,
    /// Request-queue capacity — the admission limit (global across all
    /// shards).
    pub queue_capacity: usize,
    /// Micro-batch size cap (collect up to this many requests…).
    pub batch_max: usize,
    /// …or until this much time has passed since the first one, whichever
    /// comes first.
    pub batch_wait: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Per-frame payload cap handed to the protocol reader.
    pub max_payload: usize,
    /// Optional adaptive early-exit policy applied to requests without
    /// per-request overrides.
    pub exit_policy: Option<ExitPolicy>,
    /// Per-model admission sub-budget: how many **queued** requests one
    /// model id may hold at once, so a hot model cannot starve the others
    /// out of the shared queue. `None` derives
    /// `max(1, 2·queue_capacity / models)` — deliberately over-subscribed
    /// (sub-budgets sum to ~2× the queue) so a lone active model can
    /// still fill the whole queue; with a single registered model it
    /// never binds (its budget 2·capacity exceeds the queue itself).
    pub model_queue_share: Option<usize>,
    /// Which I/O path drives connections.
    pub io: IoModel,
    /// Admission-queue shards; 0 derives one shard per worker. Clamped to
    /// `queue_capacity` so no shard ends up empty.
    pub shards: usize,
    /// Reactor-only: close a connection with no outstanding work, no
    /// buffered bytes and no traffic for this long. `None` keeps idle
    /// connections open indefinitely (the threaded path always does).
    pub idle_timeout: Option<Duration>,
    /// Reactor-only: cap on simultaneously open client connections;
    /// accepts beyond it are dropped immediately.
    pub max_connections: usize,
    /// Pin worker threads to CPUs in the detected topology's cores-first
    /// order (best-effort; a no-op where affinity is unavailable).
    pub pin_workers: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            engine_workers: 1,
            queue_capacity: 64,
            batch_max: 8,
            batch_wait: Duration::from_micros(500),
            default_deadline: Duration::from_millis(250),
            max_payload: DEFAULT_MAX_PAYLOAD,
            exit_policy: None,
            model_queue_share: None,
            io: IoModel::Auto,
            shards: 0,
            idle_timeout: None,
            max_connections: 4096,
            pin_workers: false,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be ≥ 1".into()));
        }
        if self.engine_workers == 0 {
            return Err(ServeError::InvalidConfig(
                "engine_workers must be ≥ 1".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be ≥ 1".into(),
            ));
        }
        if self.batch_max == 0 {
            return Err(ServeError::InvalidConfig("batch_max must be ≥ 1".into()));
        }
        if self.default_deadline.is_zero() {
            return Err(ServeError::InvalidConfig(
                "default_deadline must be positive".into(),
            ));
        }
        if self.model_queue_share == Some(0) {
            return Err(ServeError::InvalidConfig(
                "model_queue_share must be ≥ 1 when set".into(),
            ));
        }
        if self.max_connections == 0 {
            return Err(ServeError::InvalidConfig(
                "max_connections must be ≥ 1".into(),
            ));
        }
        if self.idle_timeout == Some(Duration::ZERO) {
            return Err(ServeError::InvalidConfig(
                "idle_timeout must be positive when set".into(),
            ));
        }
        Ok(())
    }

    /// The shard count this config resolves to: explicit, or one shard
    /// per worker, capped by capacity.
    pub fn effective_shards(&self) -> usize {
        let requested = if self.shards == 0 {
            self.workers
        } else {
            self.shards
        };
        requested.clamp(1, self.queue_capacity.max(1))
    }
}

/// Where a reply goes. Implemented by the threaded path's per-connection
/// writer and the reactor's outbox, so admission and workers are I/O-path
/// agnostic.
pub(crate) trait ReplyTo: Send + Sync {
    /// Delivers (or spools) one frame; errors mean the client is gone and
    /// are swallowed — per-request bookkeeping still runs.
    fn send(&self, frame: &Frame);
    /// Admitted-but-unanswered requests on this connection. Every reply
    /// decrements it **after** the frame was handed to `send`.
    fn outstanding(&self) -> &AtomicUsize;
}

/// Sends a typed error frame through any reply path.
pub(crate) fn send_error(
    conn: &dyn ReplyTo,
    request_id: u64,
    code: ErrorCode,
    message: impl Into<String>,
) {
    conn.send(&Frame::Error(ErrorFrame {
        request_id,
        code,
        message: message.into(),
    }));
}

/// Per-connection state shared between a threaded reader and the workers
/// that answer its requests.
#[derive(Debug)]
struct ConnShared {
    /// Write half; a mutex serializes replies from concurrent workers.
    writer: Mutex<TcpStream>,
    /// Admitted-but-unanswered requests on this connection.
    outstanding: AtomicUsize,
}

impl ReplyTo for ConnShared {
    fn send(&self, frame: &Frame) {
        let mut w = self.writer.lock().expect("connection writer poisoned");
        let _ = write_frame(&mut *w, frame);
    }

    fn outstanding(&self) -> &AtomicUsize {
        &self.outstanding
    }
}

/// An admitted request waiting in the queue.
pub(crate) struct Pending {
    pub(crate) id: u64,
    pub(crate) model_id: u32,
    pub(crate) model: Arc<PreparedModel>,
    pub(crate) input: Tensor,
    pub(crate) stream_len: Option<usize>,
    pub(crate) margin: Option<f32>,
    pub(crate) admitted: Instant,
    pub(crate) deadline: Instant,
    pub(crate) conn: Arc<dyn ReplyTo>,
}

/// Everything the I/O and worker threads share.
pub(crate) struct Shared {
    pub(crate) registry: ModelRegistry,
    pub(crate) cfg: ServeConfig,
    pub(crate) queue: ShardedQueue<Pending>,
    pub(crate) stats: Stats,
    pub(crate) shutdown: AtomicBool,
    /// Queued requests per model id, bounded by `model_share` — one model
    /// cannot monopolize the shared queue. Incremented at admission,
    /// decremented at dequeue (the gate bounds queue occupancy, not
    /// in-service work, which `workers · batch_max` already caps).
    gates: HashMap<u32, AtomicUsize>,
    /// The per-model admission sub-budget every gate is checked against.
    model_share: usize,
    /// Round-robin counter assigning each new connection a home shard.
    conn_rr: AtomicUsize,
    /// Whether the reactor path is driving I/O (for the stats gauge).
    reactor_mode: bool,
    /// Model ids with a background prepare in flight (single-flight dedup:
    /// the first cold request enqueues the compile, later ones only get
    /// the `Warming` reply).
    warming: Mutex<HashSet<u32>>,
    /// Work channel feeding the background prepare thread. Taken (set to
    /// `None`) at shutdown so the thread's `recv` disconnects and it exits.
    prepare_tx: Mutex<Option<mpsc::Sender<u32>>>,
}

impl Shared {
    /// Releases the queue slot a request's model gate held; called once
    /// per admitted request, when it leaves the queue (or bounces off a
    /// full/closed queue at admission).
    fn release_gate(&self, model_id: u32) {
        if let Some(gate) = self.gates.get(&model_id) {
            gate.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Home shard for a newly accepted connection (round-robin so the
    /// parse-order FIFO of a single connection maps to a single shard).
    pub(crate) fn next_home_shard(&self) -> usize {
        self.conn_rr.fetch_add(1, Ordering::Relaxed) % self.queue.shards()
    }

    /// A point-in-time statistics snapshot with all gauges sampled.
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        let gauges = QueueGauges {
            queue_depth_hwm: self.queue.depth_hwm(),
            shards: self.queue.shards() as u64,
            shard_depth_hwm: self.queue.shard_depth_hwm(),
            queue_steals: self.queue.steals(),
            reactor_mode: u64::from(self.reactor_mode),
        };
        self.stats.snapshot(
            gauges,
            self.registry.cache().dedup_totals(),
            self.registry.cache().prepare_stats(),
        )
    }

    /// Schedules a background prepare for a cold model, deduplicating
    /// in-flight compiles per model id. Returns whether the model is (now)
    /// known to be warming; `false` only when the prepare thread is gone
    /// (shutdown), in which case the caller falls back to the shutdown
    /// reject path.
    fn request_prepare(&self, model_id: u32) -> bool {
        let mut warming = self.warming.lock().expect("warming set poisoned");
        if warming.contains(&model_id) {
            return true;
        }
        let tx = self.prepare_tx.lock().expect("prepare channel poisoned");
        let Some(tx) = tx.as_ref() else {
            return false;
        };
        if tx.send(model_id).is_err() {
            return false;
        }
        warming.insert(model_id);
        true
    }
}

/// Background prepare loop: compiles cold models off the request workers.
/// One job per distinct model id is in flight at a time (`Shared::warming`
/// holds the dedup set); the loop exits when the sender side is dropped at
/// shutdown. A failed compile is dropped from the warming set too, so the
/// next request for that model re-triggers it (and keeps getting `Warming`
/// rather than a misleading success).
fn prepare_loop(shared: &Shared, jobs: &mpsc::Receiver<u32>) {
    while let Ok(model_id) = jobs.recv() {
        let _ = shared.registry.resolve(model_id);
        shared
            .warming
            .lock()
            .expect("warming set poisoned")
            .remove(&model_id);
    }
}

/// The running server: bind with [`Server::start`], stop with
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr`, spawns the I/O path and worker pool, and returns a
    /// handle. Pass port 0 to let the OS pick (see
    /// [`ServerHandle::addr`]).
    ///
    /// # Errors
    ///
    /// Config validation and socket errors; `IoModel::Reactor` on a host
    /// without readiness-polling support.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: ModelRegistry,
        cfg: ServeConfig,
    ) -> Result<ServerHandle, ServeError> {
        cfg.validate()?;
        if registry.is_empty() {
            return Err(ServeError::InvalidConfig(
                "cannot serve an empty model registry".into(),
            ));
        }
        // Engine construction validates engine_workers and the policy.
        build_engine(&cfg)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let use_reactor = match cfg.io {
            IoModel::Auto => Poller::supported(),
            IoModel::Reactor => {
                if !Poller::supported() {
                    return Err(ServeError::InvalidConfig(
                        "io=reactor requires readiness-polling support on this host \
                         (use io=auto or io=threaded)"
                            .into(),
                    ));
                }
                true
            }
            IoModel::Threaded => false,
        };
        let waker = if use_reactor {
            Some(Arc::new(Waker::new().map_err(ServeError::Io)?))
        } else {
            None
        };

        let model_share = cfg
            .model_queue_share
            .unwrap_or_else(|| (2 * cfg.queue_capacity / registry.len()).max(1));
        let gates = registry
            .ids()
            .into_iter()
            .map(|id| (id, AtomicUsize::new(0)))
            .collect();
        let (prepare_tx, prepare_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            registry,
            cfg,
            queue: ShardedQueue::new(cfg.queue_capacity, cfg.effective_shards()),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            gates,
            model_share,
            conn_rr: AtomicUsize::new(0),
            reactor_mode: use_reactor,
            warming: Mutex::new(HashSet::new()),
            prepare_tx: Mutex::new(Some(prepare_tx)),
        });
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let preparer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("acoustic-serve-prepare".into())
                .spawn(move || prepare_loop(&shared, &prepare_rx))
                .map_err(ServeError::Io)?
        };

        let (acceptor, reactor) = if let Some(waker) = waker.clone() {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("acoustic-serve-reactor".into())
                .spawn(move || crate::reactor::reactor_loop(listener, &shared, &waker))
                .map_err(ServeError::Io)?;
            (None, Some(handle))
        } else {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            let handle = std::thread::Builder::new()
                .name("acoustic-serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared, &readers))
                .map_err(ServeError::Io)?;
            (Some(handle), None)
        };

        let pin_order = if cfg.pin_workers {
            Topology::detect().pin_order()
        } else {
            Vec::new()
        };
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let cpu = (!pin_order.is_empty()).then(|| pin_order[i % pin_order.len()]);
                std::thread::Builder::new()
                    .name(format!("acoustic-serve-worker-{i}"))
                    .spawn(move || {
                        if let Some(cpu) = cpu {
                            let _ = Topology::pin_current_thread(cpu);
                        }
                        worker_loop(&shared, i);
                    })
                    .map_err(ServeError::Io)
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(ServerHandle {
            addr: local_addr,
            shared,
            acceptor,
            reactor,
            waker,
            workers,
            readers,
            preparer: Some(preparer),
        })
    }
}

/// Handle to a running server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    reactor: Option<JoinHandle<()>>,
    waker: Option<Arc<Waker>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    preparer: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("cfg", &self.cfg)
            .field("queue_depth", &self.queue.depth())
            .field("reactor_mode", &self.reactor_mode)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Current request-queue depth (summed across shards).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Whether the readiness reactor (rather than the threaded fallback)
    /// is driving connection I/O.
    pub fn reactor_active(&self) -> bool {
        self.shared.reactor_mode
    }

    /// Gracefully stops the server: refuse new work, answer everything
    /// already admitted, join every thread. Returns the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Dropping the job sender first lets the background prepare thread
        // finish its current compile (if any) and exit while the I/O
        // threads drain; it is joined last.
        drop(
            self.shared
                .prepare_tx
                .lock()
                .expect("prepare channel poisoned")
                .take(),
        );
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        // The reactor keeps flushing replies (produced by still-running
        // workers) until nothing is outstanding, so it must be joined
        // before the queue closes and the workers exit.
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Threaded readers wait for their connections' outstanding
        // replies, so they too are joined while workers still drain.
        let readers = std::mem::take(&mut *self.readers.lock().expect("reader list poisoned"));
        for r in readers {
            let _ = r.join();
        }
        self.shared.queue.close();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
        if let Some(p) = self.preparer.take() {
            let _ = p.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some()
            || self.reactor.is_some()
            || !self.workers.is_empty()
            || self.preparer.is_some()
        {
            self.shutdown_impl();
        }
    }
}

fn build_engine(cfg: &ServeConfig) -> Result<BatchEngine, ServeError> {
    let engine = BatchEngine::new(cfg.engine_workers)?;
    Ok(match cfg.exit_policy {
        Some(p) => engine.with_exit_policy(p)?,
        None => engine,
    })
}

// --- threaded fallback: acceptor ------------------------------------------

fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                // Readers poll the shutdown flag between (and inside) reads.
                let _ = stream.set_read_timeout(Some(POLL));
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("acoustic-serve-conn".into())
                    .spawn(move || reader_loop(stream, &shared));
                match handle {
                    Ok(h) => readers.lock().expect("reader list poisoned").push(h),
                    Err(_) => { /* spawn failed; connection drops */ }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

// --- threaded fallback: connection reader ---------------------------------

/// Outcome of an interruptible exact read.
enum ReadExact {
    /// The buffer is full.
    Full,
    /// The shutdown flag was raised while waiting.
    Shutdown,
    /// The peer closed (or the transport failed).
    Closed,
}

/// `read_exact` that keeps partial progress across read timeouts so the
/// 25 ms shutdown-poll granularity never desynchronizes the frame stream
/// of a slow client.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> ReadExact {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadExact::Closed,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return ReadExact::Shutdown;
                }
            }
            Err(_) => return ReadExact::Closed,
        }
    }
    ReadExact::Full
}

/// One frame, interruptibly. `Ok(None)` means "stop reading" (peer gone or
/// shutting down).
fn read_frame_interruptible(
    stream: &mut TcpStream,
    max_payload: usize,
    shutdown: &AtomicBool,
) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_interruptible(stream, &mut header, shutdown) {
        ReadExact::Full => {}
        ReadExact::Shutdown | ReadExact::Closed => return Ok(None),
    }
    let FrameHeader {
        ty,
        request_id,
        payload_len,
    } = crate::protocol::parse_header(&header, max_payload)?;
    let mut payload = vec![0u8; payload_len];
    match read_exact_interruptible(stream, &mut payload, shutdown) {
        ReadExact::Full => {}
        ReadExact::Shutdown | ReadExact::Closed => return Ok(None),
    }
    decode_frame(ty, request_id, &payload).map(Some)
}

fn reader_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn: Arc<dyn ReplyTo> = Arc::new(ConnShared {
        writer: Mutex::new(writer),
        outstanding: AtomicUsize::new(0),
    });
    let home = shared.next_home_shard();
    shared.stats.connection_opened();

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match read_frame_interruptible(&mut stream, shared.cfg.max_payload, &shared.shutdown) {
            Ok(None) => break,
            Ok(Some(Frame::InferRequest(req))) => admit(req, &conn, home, shared),
            Ok(Some(Frame::StatsRequest(id))) => {
                conn.send(&Frame::StatsResponse(id, shared.snapshot()));
            }
            Ok(Some(other)) => {
                // Server-bound streams carry requests only.
                Stats::bump(&shared.stats.rejected_malformed);
                send_error(
                    &*conn,
                    other.request_id(),
                    ErrorCode::Malformed,
                    "unexpected frame type from client",
                );
            }
            Err(WireError::Malformed {
                request_id,
                recoverable,
                reason,
            }) => {
                Stats::bump(&shared.stats.rejected_malformed);
                send_error(&*conn, request_id, ErrorCode::Malformed, reason);
                if !recoverable {
                    break;
                }
            }
            Err(WireError::Io(_)) => break,
        }
    }

    // Drain: answered requests may still be in flight; give workers a
    // bounded window to finish before the connection closes.
    let drain_start = Instant::now();
    while conn.outstanding().load(Ordering::SeqCst) > 0 && drain_start.elapsed() < DRAIN_CAP {
        std::thread::sleep(Duration::from_millis(1));
    }
    shared
        .stats
        .active_connections
        .fetch_sub(1, Ordering::Relaxed);
}

/// Validates a decoded request and runs admission control; shared by both
/// I/O paths. `home` is the connection's home shard.
pub(crate) fn admit(req: InferRequest, conn: &Arc<dyn ReplyTo>, home: usize, shared: &Shared) {
    Stats::bump(&shared.stats.received);
    let id = req.request_id;

    let model = match shared.registry.resolve_warm(req.model_id) {
        Ok(Some(m)) => m,
        Ok(None) => {
            // Registered but evicted from the cache. Recompiling here
            // would stall this worker (and, behind it, the connection's
            // whole parse FIFO) for the full prepare time, so the compile
            // is handed to the background prepare thread and the client
            // told to retry.
            if shared.request_prepare(req.model_id) {
                Stats::bump(&shared.stats.rejected_warming);
                send_error(
                    &**conn,
                    id,
                    ErrorCode::Warming,
                    format!("model {} is warming, retry", req.model_id),
                );
            } else {
                // Prepare thread already gone: shutdown is in progress.
                Stats::bump(&shared.stats.rejected_shutdown);
                send_error(&**conn, id, ErrorCode::ShuttingDown, "server shutting down");
            }
            return;
        }
        Err(RegistryError::UnknownModel(_)) => {
            Stats::bump(&shared.stats.rejected_unknown_model);
            send_error(
                &**conn,
                id,
                ErrorCode::UnknownModel,
                format!("model {}", req.model_id),
            );
            return;
        }
        Err(e) => {
            // Registry faults other than "unknown id" are internal.
            Stats::bump(&shared.stats.failed);
            send_error(&**conn, id, ErrorCode::Internal, e.to_string());
            return;
        }
    };
    if req.values.iter().any(|v| !v.is_finite()) {
        Stats::bump(&shared.stats.failed);
        send_error(&**conn, id, ErrorCode::BadInput, "non-finite input values");
        return;
    }
    let shape: Vec<usize> = req.shape.iter().map(|&d| d as usize).collect();
    let input = match Tensor::from_vec(&shape, req.values) {
        Ok(t) => t,
        Err(e) => {
            Stats::bump(&shared.stats.failed);
            send_error(&**conn, id, ErrorCode::BadInput, e.to_string());
            return;
        }
    };
    let stream_len = req.stream_len.map(|l| l as usize);
    if let Some(len) = stream_len {
        // Fail fast instead of burning a queue slot on a doomed request.
        if !model.supported_lengths().contains(&len) {
            Stats::bump(&shared.stats.failed);
            send_error(
                &**conn,
                id,
                ErrorCode::BadInput,
                format!(
                    "stream length {len} not in supported prefixes {:?}",
                    model.supported_lengths()
                ),
            );
            return;
        }
    }

    let now = Instant::now();
    let deadline = if req.deadline_micros == 0 {
        shared.cfg.default_deadline
    } else {
        Duration::from_micros(u64::from(req.deadline_micros))
    };
    let model_id = req.model_id;
    let pending = Pending {
        id,
        model_id,
        model,
        input,
        stream_len,
        margin: req.margin,
        admitted: now,
        deadline: now + deadline,
        conn: Arc::clone(conn),
    };

    // Per-model admission sub-budget, checked before the shared queue so
    // one model's burst is rejected while other models still get slots.
    let gate = shared
        .gates
        .get(&model_id)
        .expect("gate exists for every registered model");
    if gate.fetch_add(1, Ordering::SeqCst) >= shared.model_share {
        gate.fetch_sub(1, Ordering::SeqCst);
        Stats::bump(&shared.stats.rejected_model_budget);
        send_error(
            &**conn,
            id,
            ErrorCode::Overloaded,
            format!("model {model_id} admission budget exhausted"),
        );
        return;
    }

    // The reply (wherever it comes from) decrements `outstanding`, so the
    // increment must precede the push.
    conn.outstanding().fetch_add(1, Ordering::SeqCst);
    match shared.queue.try_push(pending, home) {
        Ok(()) => Stats::bump(&shared.stats.accepted),
        Err(ShardPush::Full) => {
            shared.release_gate(model_id);
            conn.outstanding().fetch_sub(1, Ordering::SeqCst);
            Stats::bump(&shared.stats.rejected_overload);
            send_error(&**conn, id, ErrorCode::Overloaded, "request queue full");
        }
        Err(ShardPush::Closed) => {
            shared.release_gate(model_id);
            conn.outstanding().fetch_sub(1, Ordering::SeqCst);
            Stats::bump(&shared.stats.rejected_shutdown);
            send_error(&**conn, id, ErrorCode::ShuttingDown, "server shutting down");
        }
    }
}

// --- workers --------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    let engine = build_engine(&shared.cfg).expect("config validated at startup");
    let home = index % shared.queue.shards();
    loop {
        match shared.queue.pop(home, POLL) {
            ShardPop::Drained => break,
            ShardPop::TimedOut => continue,
            ShardPop::Item(first) => {
                let batch = collect_batch(first, home, shared);
                execute_batch(batch, &engine, shared);
            }
        }
    }
}

/// Collects up to `batch_max` requests, waiting at most `batch_wait` past
/// the first one.
fn collect_batch(first: Pending, home: usize, shared: &Arc<Shared>) -> Vec<Pending> {
    let cfg = &shared.cfg;
    let mut batch = vec![first];
    if cfg.batch_max > 1 {
        let horizon = Instant::now() + cfg.batch_wait;
        while batch.len() < cfg.batch_max {
            let now = Instant::now();
            if now >= horizon {
                break;
            }
            match shared.queue.pop(home, horizon - now) {
                ShardPop::Item(r) => batch.push(r),
                ShardPop::TimedOut | ShardPop::Drained => break,
            }
        }
    }
    batch
}

fn execute_batch(batch: Vec<Pending>, engine: &BatchEngine, shared: &Arc<Shared>) {
    let dequeued = Instant::now();

    // The batch has left the queue; free its models' admission budgets.
    for p in &batch {
        shared.release_gate(p.model_id);
    }

    // Deadline enforcement happens here — an expired request is answered
    // without touching the simulator.
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    for p in batch {
        if dequeued > p.deadline {
            Stats::bump(&shared.stats.expired);
            send_error(
                &*p.conn,
                p.id,
                ErrorCode::DeadlineExceeded,
                "deadline expired in queue",
            );
            p.conn.outstanding().fetch_sub(1, Ordering::SeqCst);
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }

    // A micro-batch may span models; group per prepared model.
    let mut groups: Vec<(u64, Vec<Pending>)> = Vec::new();
    for p in live {
        let key = p.model.fingerprint();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, g)) => g.push(p),
            None => groups.push((key, vec![p])),
        }
    }

    for (_, group) in groups {
        Stats::bump(&shared.stats.batches);
        Stats::add(&shared.stats.batch_requests, group.len() as u64);
        let model = Arc::clone(&group[0].model);
        let requests: Vec<ReadyRequest<'_>> = group
            .iter()
            .map(|p| ReadyRequest {
                image_index: p.id,
                input: &p.input,
                stream_len: p.stream_len,
                margin: p.margin,
            })
            .collect();
        let started = Instant::now();
        let outcomes = engine
            .run_ready_counted(&model, &requests)
            .map(|(outs, kernel)| {
                shared.stats.absorb_kernel(&kernel);
                shared.stats.record_plan(&model.plan());
                outs
            });
        let service = started.elapsed();
        // Per-request service time inside a batch is not individually
        // measurable; attribute the batch mean to each request.
        let per_request_ns = (service.as_nanos() / group.len() as u128) as u64;

        match outcomes {
            Ok(outs) => {
                for (p, out) in group.iter().zip(outs) {
                    match out {
                        Ok(o) => {
                            Stats::bump(&shared.stats.completed);
                            Stats::add(
                                &shared.stats.queue_wait_ns,
                                (dequeued - p.admitted).as_nanos() as u64,
                            );
                            Stats::add(&shared.stats.service_ns, per_request_ns);
                            p.conn.send(&Frame::InferResponse(InferResponse {
                                request_id: p.id,
                                effective_len: o.effective_len as u32,
                                logits: o.logits.as_slice().to_vec(),
                            }));
                        }
                        Err(e) => {
                            Stats::bump(&shared.stats.failed);
                            send_error(&*p.conn, p.id, ErrorCode::BadInput, e.to_string());
                        }
                    }
                    p.conn.outstanding().fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) => {
                // Up-front validation makes this unreachable for wire
                // requests; answer defensively rather than hanging clients.
                let msg = e.to_string();
                for p in &group {
                    Stats::bump(&shared.stats.failed);
                    send_error(&*p.conn, p.id, ErrorCode::Internal, msg.clone());
                    p.conn.outstanding().fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }
}
