//! acoustic-serve: a dependency-free TCP inference server for the
//! ACOUSTIC stochastic-computing runtime.
//!
//! The crate turns [`acoustic_runtime`]'s deterministic batch engine into
//! a network service without giving up any of its guarantees:
//!
//! * **Wire protocol** ([`protocol`]) — length-prefixed binary frames with
//!   a versioned header; inference requests carry an optional per-request
//!   stream-length or early-exit-margin override, and every failure mode
//!   is a typed error frame, never a dropped connection mid-request.
//! * **Non-blocking I/O** ([`server`]) — by default a single reactor
//!   thread drives every client connection through acoustic-net's
//!   readiness poller (per-connection state machines, bounded buffers,
//!   write backpressure, optional idle reaping); hosts without the
//!   polling syscall shim degrade to the original thread-per-connection
//!   path. Both paths produce bit-identical responses.
//! * **Admission control** ([`server`]) — one bounded, sharded queue is
//!   the only buffer in the server; when every shard fills, requests are
//!   rejected immediately with `Overloaded`. Workers pop from a home
//!   shard and steal from the rest. Deadlines are enforced at dequeue so
//!   an expired request never burns simulation time.
//! * **Micro-batching** — workers drain up to `batch_max` requests or wait
//!   `batch_wait`, whichever comes first, and evaluate them through
//!   [`acoustic_runtime::BatchEngine::run_ready`], reusing the runtime's
//!   scratch threading.
//! * **Determinism** — a request's id doubles as its seed index, so the
//!   response is bit-identical to a direct `BatchEngine` evaluation of the
//!   same `(model, id, image)` triple regardless of batching, worker count
//!   or arrival order. The load generator ([`loadgen`]) exploits this to
//!   validate every accepted response against locally recomputed golden
//!   logits.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//!
//! use acoustic_runtime::ModelCache;
//! use acoustic_serve::registry::{demo_model, ModelRegistry, ModelSpec, DEMO_MODEL_ID};
//! use acoustic_serve::server::{ServeConfig, Server};
//! use acoustic_simfunc::SimConfig;
//!
//! let (network, _data) = demo_model(64, 16, 2).unwrap();
//! let cache = Arc::new(ModelCache::new());
//! let registry = ModelRegistry::build(
//!     vec![ModelSpec { id: DEMO_MODEL_ID, network, cfg: SimConfig::with_stream_len(128).unwrap() }],
//!     &cache,
//! )
//! .unwrap();
//! let handle = Server::start("127.0.0.1:0", registry, ServeConfig::default()).unwrap();
//! println!("serving on {}", handle.addr());
//! let stats = handle.shutdown();
//! println!("completed {}", stats.completed);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod queue;
mod reactor;
pub mod registry;
mod serve_error;
pub mod server;
pub mod stats;

pub use client::{Client, InferReply};
pub use loadgen::{
    parse_mix, run_load, run_load_mix, summarize, summarize_connections, summarize_mix,
    validate_responses, validate_responses_mix, ConnectionReport, LoadGenConfig, LoadReport,
    ModelLoadReport, ModelTraffic,
};
pub use protocol::{ErrorCode, Frame, InferRequest, InferResponse, StatsSnapshot};
pub use registry::{
    demo_model, demo_network, ModelRegistry, ModelSpec, RegistryError, DEMO_MODEL_ID,
};
pub use serve_error::ServeError;
pub use server::{IoModel, ServeConfig, Server, ServerHandle};
pub use stats::QueueGauges;
