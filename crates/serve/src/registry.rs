//! The server's model registry and the shared demo model.
//!
//! Models are registered at startup under small integer ids and prepared
//! once through the runtime's [`ModelCache`]; request admission then only
//! does an id lookup — no preparation, no locking beyond the cache's own.

use std::collections::HashMap;
use std::sync::Arc;

use acoustic_datasets::Dataset;
use acoustic_nn::layers::{AccumMode, AvgPool2d, Conv2d, Dense, Network, Relu};
use acoustic_nn::train::{train, SgdConfig};
use acoustic_runtime::{ModelCache, PreparedModel, RuntimeError};
use acoustic_simfunc::SimConfig;

/// One model to serve: an id, the trained network and its sim config.
#[derive(Debug)]
pub struct ModelSpec {
    /// Wire-visible model id.
    pub id: u32,
    /// The trained network.
    pub network: Network,
    /// Stream length / seeds to prepare with.
    pub cfg: SimConfig,
}

/// An immutable id → prepared-model map shared by all workers.
#[derive(Debug)]
pub struct ModelRegistry {
    models: HashMap<u32, Arc<PreparedModel>>,
}

impl ModelRegistry {
    /// Prepares every spec through `cache` (deduplicating identical
    /// `(network, config)` pairs) and builds the registry.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] on a duplicate id; otherwise
    /// propagates preparation errors.
    pub fn build(specs: Vec<ModelSpec>, cache: &ModelCache) -> Result<Self, RuntimeError> {
        let mut models = HashMap::with_capacity(specs.len());
        for spec in specs {
            let prepared = cache.get_or_compile(spec.cfg, &spec.network)?;
            if models.insert(spec.id, prepared).is_some() {
                return Err(RuntimeError::InvalidConfig(format!(
                    "duplicate model id {}",
                    spec.id
                )));
            }
        }
        Ok(ModelRegistry { models })
    }

    /// The prepared model registered under `id`.
    pub fn get(&self, id: u32) -> Option<&Arc<PreparedModel>> {
        self.models.get(&id)
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// Model id the demo binaries and benches register their network under.
pub const DEMO_MODEL_ID: u32 = 1;

/// Builds the (untrained) demo digit CNN: conv(1→6,3×3) → avgpool(2) →
/// clamped ReLU → dense(6·14·14 → 10) over 28×28 inputs.
///
/// Layer construction is deterministic, so server and load generator can
/// each build this independently and agree bit-for-bit on the weights.
///
/// # Errors
///
/// Propagates layer-construction errors (none for these fixed shapes).
pub fn demo_network() -> Result<Network, acoustic_nn::NnError> {
    let mut net = Network::new();
    net.push_conv(Conv2d::new(1, 6, 3, 1, 1, AccumMode::OrApprox)?);
    net.push_avg_pool(AvgPool2d::new(2)?);
    net.push_relu(Relu::clamped());
    net.push_flatten();
    net.push_dense(Dense::new(6 * 14 * 14, 10, AccumMode::OrApprox)?);
    Ok(net)
}

/// Trains the demo network on the synthetic digit task and returns it with
/// the dataset. Fully deterministic: the server binary and the load
/// generator call this with the same parameters and end up with
/// bit-identical weights, which is what makes golden-logit validation over
/// the wire possible.
///
/// # Errors
///
/// Propagates training errors.
pub fn demo_model(
    train_images: usize,
    test_images: usize,
    epochs: usize,
) -> Result<(Network, Dataset), acoustic_nn::NnError> {
    let data = acoustic_datasets::mnist_like(train_images, test_images, 11);
    let mut net = demo_network()?;
    let sgd = SgdConfig {
        lr: 0.08,
        momentum: 0.9,
        batch_size: 16,
    };
    train(&mut net, &data.train, &sgd, epochs)?;
    Ok((net, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_and_rejects_duplicates() {
        let cache = ModelCache::new();
        let cfg = SimConfig::with_stream_len(64).unwrap();
        let specs = vec![
            ModelSpec {
                id: 1,
                network: demo_network().unwrap(),
                cfg,
            },
            ModelSpec {
                id: 2,
                network: demo_network().unwrap(),
                cfg,
            },
        ];
        let reg = ModelRegistry::build(specs, &cache).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.get(1).is_some());
        assert!(reg.get(9).is_none());
        // Identical (network, cfg) pairs share one prepared model.
        assert!(Arc::ptr_eq(reg.get(1).unwrap(), reg.get(2).unwrap()));

        let dup = vec![
            ModelSpec {
                id: 1,
                network: demo_network().unwrap(),
                cfg,
            },
            ModelSpec {
                id: 1,
                network: demo_network().unwrap(),
                cfg,
            },
        ];
        assert!(ModelRegistry::build(dup, &cache).is_err());
    }

    #[test]
    fn demo_model_is_deterministic() {
        let (a, _) = demo_model(40, 8, 1).unwrap();
        let (b, _) = demo_model(40, 8, 1).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
