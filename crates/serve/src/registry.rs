//! The server's model registry and the shared demo model.
//!
//! Models are registered at startup under small integer ids and prepared
//! through the runtime's shared [`ModelCache`]. The registry keeps the
//! *source* of every model (network + sim config), not just the prepared
//! instance: when the cache runs under a memory budget, a rarely-used
//! model's prepared stream banks may be evicted, and [`resolve`] simply
//! recompiles it on the next request — models are **warm** (resident in
//! the cache) or **cold** (recompiled on demand), never unavailable.
//!
//! [`resolve`]: ModelRegistry::resolve

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use acoustic_datasets::Dataset;
use acoustic_nn::layers::{AccumMode, AvgPool2d, Conv2d, Dense, Network, Relu};
use acoustic_nn::train::{train, SgdConfig};
use acoustic_runtime::{ModelCache, PreparedModel, RuntimeError};
use acoustic_simfunc::SimConfig;
use acoustic_train::TrainError;

/// One model to serve: an id, the trained network and its sim config.
#[derive(Debug)]
pub struct ModelSpec {
    /// Wire-visible model id.
    pub id: u32,
    /// The trained network.
    pub network: Network,
    /// Stream length / seeds to prepare with.
    pub cfg: SimConfig,
}

/// Typed registry construction/lookup errors.
#[derive(Debug)]
pub enum RegistryError {
    /// Two specs claimed the same wire-visible model id.
    DuplicateModelId(u32),
    /// No model is registered under the requested id.
    UnknownModel(u32),
    /// Loading a model zoo directory failed (missing or malformed
    /// manifest, missing checkpoint artifact, undeserializable weights).
    Zoo(TrainError),
    /// Preparing a model through the cache failed.
    Runtime(RuntimeError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateModelId(id) => write!(f, "duplicate model id {id}"),
            RegistryError::UnknownModel(id) => write!(f, "unknown model id {id}"),
            RegistryError::Zoo(e) => write!(f, "model zoo error: {e}"),
            RegistryError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Zoo(e) => Some(e),
            RegistryError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrainError> for RegistryError {
    fn from(e: TrainError) -> Self {
        RegistryError::Zoo(e)
    }
}

impl From<RuntimeError> for RegistryError {
    fn from(e: RuntimeError) -> Self {
        RegistryError::Runtime(e)
    }
}

/// What the registry keeps per model: enough to re-prepare it at any time.
#[derive(Debug)]
struct RegEntry {
    network: Network,
    cfg: SimConfig,
}

/// An id → model map shared by all workers, backed by a [`ModelCache`].
#[derive(Debug)]
pub struct ModelRegistry {
    entries: HashMap<u32, RegEntry>,
    cache: Arc<ModelCache>,
}

impl ModelRegistry {
    /// Builds the registry and warm-prepares every spec through `cache`
    /// (deduplicating identical `(network, config)` pairs). Under a cache
    /// memory budget the warm-up itself may evict earlier models; they
    /// stay registered and are recompiled by [`resolve`] on demand.
    ///
    /// [`resolve`]: ModelRegistry::resolve
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateModelId`] on a duplicate id; otherwise
    /// propagates preparation errors.
    pub fn build(specs: Vec<ModelSpec>, cache: &Arc<ModelCache>) -> Result<Self, RegistryError> {
        let mut entries = HashMap::with_capacity(specs.len());
        for spec in specs {
            cache.get_or_compile(spec.cfg, &spec.network)?;
            if entries
                .insert(
                    spec.id,
                    RegEntry {
                        network: spec.network,
                        cfg: spec.cfg,
                    },
                )
                .is_some()
            {
                return Err(RegistryError::DuplicateModelId(spec.id));
            }
        }
        Ok(ModelRegistry {
            entries,
            cache: Arc::clone(cache),
        })
    }

    /// Loads every checkpoint of an `acoustic-zoo v1` directory (written
    /// by `train-zoo`) and registers each under its manifest id, prepared
    /// at the stream length recorded in the manifest.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Zoo`] for manifest/artifact problems (including
    /// [`TrainError::MissingArtifact`] when a weight file referenced by
    /// the manifest is gone); preparation errors as in [`Self::build`].
    pub fn from_zoo_dir(dir: &Path, cache: &Arc<ModelCache>) -> Result<Self, RegistryError> {
        let mut specs = Vec::new();
        for (entry, network) in acoustic_train::load_zoo(dir)? {
            let cfg = SimConfig::with_stream_len(entry.stream_len)
                .map_err(|e| RegistryError::Runtime(RuntimeError::Sim(e)))?;
            specs.push(ModelSpec {
                id: entry.model.id(),
                network,
                cfg,
            });
        }
        ModelRegistry::build(specs, cache)
    }

    /// The prepared model registered under `id` — a cache hit when warm,
    /// a recompile when the cache evicted it.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for unregistered ids; preparation
    /// errors when a cold model fails to recompile.
    pub fn resolve(&self, id: u32) -> Result<Arc<PreparedModel>, RegistryError> {
        let entry = self
            .entries
            .get(&id)
            .ok_or(RegistryError::UnknownModel(id))?;
        Ok(self.cache.get_or_compile(entry.cfg, &entry.network)?)
    }

    /// The prepared model registered under `id` when it is warm in the
    /// cache, `Ok(None)` when it is registered but cold. Never compiles —
    /// the admission path uses this so a request worker can answer from
    /// warm models instantly and route cold compiles to the background
    /// prepare thread instead of stalling on tens of seconds of stream
    /// generation.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for unregistered ids.
    pub fn resolve_warm(&self, id: u32) -> Result<Option<Arc<PreparedModel>>, RegistryError> {
        let entry = self
            .entries
            .get(&id)
            .ok_or(RegistryError::UnknownModel(id))?;
        Ok(self.cache.get_if_cached(&entry.cfg, &entry.network))
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: u32) -> bool {
        self.entries.contains_key(&id)
    }

    /// Every registered id, ascending.
    pub fn ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.entries.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The sim config `id` was registered with.
    pub fn sim_config(&self, id: u32) -> Option<SimConfig> {
        self.entries.get(&id).map(|e| e.cfg)
    }

    /// The cache backing this registry.
    pub fn cache(&self) -> &Arc<ModelCache> {
        &self.cache
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Model id the demo binaries and benches register their network under.
pub const DEMO_MODEL_ID: u32 = 1;

/// Builds the (untrained) demo digit CNN: conv(1→6,3×3) → avgpool(2) →
/// clamped ReLU → dense(6·14·14 → 10) over 28×28 inputs.
///
/// Layer construction is deterministic, so server and load generator can
/// each build this independently and agree bit-for-bit on the weights.
///
/// # Errors
///
/// Propagates layer-construction errors (none for these fixed shapes).
pub fn demo_network() -> Result<Network, acoustic_nn::NnError> {
    let mut net = Network::new();
    net.push_conv(Conv2d::new(1, 6, 3, 1, 1, AccumMode::OrApprox)?);
    net.push_avg_pool(AvgPool2d::new(2)?);
    net.push_relu(Relu::clamped());
    net.push_flatten();
    net.push_dense(Dense::new(6 * 14 * 14, 10, AccumMode::OrApprox)?);
    Ok(net)
}

/// Trains the demo network on the synthetic digit task and returns it with
/// the dataset. Fully deterministic: the server binary and the load
/// generator call this with the same parameters and end up with
/// bit-identical weights, which is what makes golden-logit validation over
/// the wire possible.
///
/// # Errors
///
/// Propagates training errors.
pub fn demo_model(
    train_images: usize,
    test_images: usize,
    epochs: usize,
) -> Result<(Network, Dataset), acoustic_nn::NnError> {
    let data = acoustic_datasets::mnist_like(train_images, test_images, 11);
    let mut net = demo_network()?;
    let sgd = SgdConfig {
        lr: 0.08,
        momentum: 0.9,
        batch_size: 16,
    };
    train(&mut net, &data.train, &sgd, epochs)?;
    Ok((net, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_and_rejects_duplicates() {
        let cache = Arc::new(ModelCache::new());
        let cfg = SimConfig::with_stream_len(64).unwrap();
        let specs = vec![
            ModelSpec {
                id: 1,
                network: demo_network().unwrap(),
                cfg,
            },
            ModelSpec {
                id: 2,
                network: demo_network().unwrap(),
                cfg,
            },
        ];
        let reg = ModelRegistry::build(specs, &cache).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.ids(), vec![1, 2]);
        assert!(reg.contains(1));
        assert!(matches!(
            reg.resolve(9),
            Err(RegistryError::UnknownModel(9))
        ));
        // Identical (network, cfg) pairs share one prepared model.
        assert!(Arc::ptr_eq(
            &reg.resolve(1).unwrap(),
            &reg.resolve(2).unwrap()
        ));

        let dup = vec![
            ModelSpec {
                id: 1,
                network: demo_network().unwrap(),
                cfg,
            },
            ModelSpec {
                id: 1,
                network: demo_network().unwrap(),
                cfg,
            },
        ];
        assert!(matches!(
            ModelRegistry::build(dup, &cache),
            Err(RegistryError::DuplicateModelId(1))
        ));
    }

    #[test]
    fn resolve_recompiles_after_cache_eviction() {
        let cache = Arc::new(ModelCache::new());
        let cfg = SimConfig::with_stream_len(64).unwrap();
        let reg = ModelRegistry::build(
            vec![ModelSpec {
                id: 1,
                network: demo_network().unwrap(),
                cfg,
            }],
            &cache,
        )
        .unwrap();
        let warm = reg.resolve(1).unwrap();
        cache.clear();
        // Cold resolve recompiles to an equivalent (new) prepared model.
        let cold = reg.resolve(1).unwrap();
        assert!(!Arc::ptr_eq(&warm, &cold));
        assert_eq!(warm.fingerprint(), cold.fingerprint());
    }

    #[test]
    fn demo_model_is_deterministic() {
        let (a, _) = demo_model(40, 8, 1).unwrap();
        let (b, _) = demo_model(40, 8, 1).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
