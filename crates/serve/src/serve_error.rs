//! Error type of the serving layer.

use std::fmt;
use std::io;

use acoustic_runtime::RuntimeError;

use crate::protocol::WireError;
use crate::registry::RegistryError;

/// Errors produced by the server, client and load generator.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io(io::Error),
    /// A protocol frame could not be read or written.
    Wire(WireError),
    /// Model preparation or batch execution failed.
    Runtime(RuntimeError),
    /// Registry construction or model resolution failed.
    Registry(RegistryError),
    /// A configuration parameter is invalid.
    InvalidConfig(String),
    /// The server answered with an unexpected frame.
    UnexpectedFrame(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Wire(e) => write!(f, "wire error: {e}"),
            ServeError::Runtime(e) => write!(f, "runtime error: {e}"),
            ServeError::Registry(e) => write!(f, "registry error: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::UnexpectedFrame(msg) => write!(f, "unexpected frame: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::Runtime(e) => Some(e),
            ServeError::Registry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<RuntimeError> for ServeError {
    fn from(e: RuntimeError) -> Self {
        ServeError::Runtime(e)
    }
}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> Self {
        ServeError::Registry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = ServeError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
        let e: ServeError = io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
    }
}
