//! The ACOUSTIC serving wire protocol.
//!
//! Length-prefixed binary frames over TCP, little-endian throughout, no
//! external dependencies. Every frame starts with a fixed 20-byte header:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "ACSV" (0x56534341 LE)
//!      4     1  protocol version (1)
//!      5     1  frame type
//!      6     2  reserved (must be 0)
//!      8     8  request id (echoed verbatim in the reply)
//!     16     4  payload length in bytes
//! ```
//!
//! followed by `payload length` bytes whose layout depends on the frame
//! type (see the per-frame structs). Malformed input is answered with a
//! typed [`ErrorFrame`] — decoding never panics, and a reader can always
//! tell a protocol error (answerable) from a dead transport (close).

use std::io::{self, Read, Write};

/// Frame magic: `b"ACSV"` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"ACSV");

/// Protocol version emitted and accepted by this build.
pub const VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 20;

/// Default cap on a single frame's payload. A 28×28 float image is ~3 KiB;
/// 16 MiB leaves room for large inputs while bounding what one client can
/// make the server buffer.
pub const DEFAULT_MAX_PAYLOAD: usize = 16 << 20;

/// Maximum tensor rank accepted on the wire.
pub const MAX_DIMS: usize = 8;

/// Frame type tags.
const T_INFER_REQUEST: u8 = 1;
const T_INFER_RESPONSE: u8 = 2;
const T_ERROR: u8 = 3;
const T_STATS_REQUEST: u8 = 4;
const T_STATS_RESPONSE: u8 = 5;

/// Typed error codes carried by [`ErrorFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame could not be decoded (bad magic/version/layout).
    Malformed = 1,
    /// The request queue was full — admission control rejected the request.
    Overloaded = 2,
    /// The request's deadline expired before a worker picked it up.
    DeadlineExceeded = 3,
    /// The requested model id is not registered.
    UnknownModel = 4,
    /// The input tensor was rejected by the model (shape, non-finite
    /// values, unsupported stream length, …).
    BadInput = 5,
    /// The server is shutting down and no longer admits requests.
    ShuttingDown = 6,
    /// An internal server failure (worker panic, response write error).
    Internal = 7,
    /// The requested model is registered but cold: its prepare is running
    /// on the background compile thread, and the request was not queued.
    /// Retry shortly; warm-model traffic is unaffected.
    Warming = 8,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Overloaded,
            3 => ErrorCode::DeadlineExceeded,
            4 => ErrorCode::UnknownModel,
            5 => ErrorCode::BadInput,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            8 => ErrorCode::Warming,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Malformed => "Malformed",
            ErrorCode::Overloaded => "Overloaded",
            ErrorCode::DeadlineExceeded => "DeadlineExceeded",
            ErrorCode::UnknownModel => "UnknownModel",
            ErrorCode::BadInput => "BadInput",
            ErrorCode::ShuttingDown => "ShuttingDown",
            ErrorCode::Internal => "Internal",
            ErrorCode::Warming => "Warming",
        };
        f.write_str(s)
    }
}

/// An inference request.
///
/// Payload layout: `u32 model_id`, `u32 deadline_micros` (0 = server
/// default), `u32 stream_len` (0 = none), `u32 margin_bits` (f32 bits;
/// negative = none, NaN = malformed), `u8 ndim`, `ndim × u32` dims,
/// `u32 n` values (must equal the dim product), `n × f32` image data.
#[derive(Debug, Clone, PartialEq)]
pub struct InferRequest {
    /// Client-chosen request id; doubles as the deterministic seed index
    /// (the server derives the image's activation streams from it).
    pub request_id: u64,
    /// Which registered model to run.
    pub model_id: u32,
    /// Per-request deadline in microseconds; 0 selects the server default.
    pub deadline_micros: u32,
    /// Fixed stream-length prefix override (`None` = engine default).
    pub stream_len: Option<u32>,
    /// Adaptive exit-margin override (`None` = engine default). At most
    /// one of `stream_len`/`margin` may be set.
    pub margin: Option<f32>,
    /// Input tensor shape.
    pub shape: Vec<u32>,
    /// Input tensor values, row-major.
    pub values: Vec<f32>,
}

/// A successful inference reply. Payload: `u32 effective_len`, `u32 n`,
/// `n × f32` logits.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Echoed request id.
    pub request_id: u64,
    /// Stream length the logits were produced at.
    pub effective_len: u32,
    /// The logits.
    pub logits: Vec<f32>,
}

/// A typed error reply. Payload: `u8 code`, `u16 len`, `len` UTF-8 bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// Echoed request id (0 when the id could not be parsed).
    pub request_id: u64,
    /// What went wrong.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Number of `u64` words in a [`StatsSnapshot`] wire payload.
const STATS_WORDS: usize = 40;

/// A point-in-time server statistics snapshot, servable over the wire.
/// Payload: `STATS_WORDS` × `u64` in field order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Frames received that parsed as inference requests.
    pub received: u64,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests answered with logits.
    pub completed: u64,
    /// Requests rejected with `Overloaded` (queue full).
    pub rejected_overload: u64,
    /// Frames answered with `Malformed`.
    pub rejected_malformed: u64,
    /// Requests answered with `UnknownModel`.
    pub rejected_unknown_model: u64,
    /// Requests rejected because their model's admission sub-budget was
    /// exhausted (counted inside `rejected_overload` on the wire errors,
    /// broken out here).
    pub rejected_model_budget: u64,
    /// Requests whose deadline expired before execution.
    pub expired: u64,
    /// Requests answered with `BadInput` (per-request simulation failure).
    pub failed: u64,
    /// Highest queue depth observed since startup.
    pub queue_depth_hwm: u64,
    /// Total nanoseconds completed requests spent queued (admission →
    /// dequeue).
    pub queue_wait_ns: u64,
    /// Total nanoseconds completed requests spent executing.
    pub service_ns: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests executed across all micro-batches.
    pub batch_requests: u64,
    /// MAC lanes whose AND/OR word work actually ran.
    pub mac_lanes: u64,
    /// OR groups that saturated before their last lane.
    pub sat_group_exits: u64,
    /// MAC lanes skipped because their OR group was already saturated.
    pub sat_lanes_skipped: u64,
    /// MAC lanes skipped because the activation segment was all zero.
    pub zero_seg_skips: u64,
    /// Image tiles executed through the tiled MAC path.
    pub tiles: u64,
    /// Requests executed inside those tiles (the rest ran solo).
    pub tiled_requests: u64,
    /// Distinct canonical weight streams across resident cached models
    /// (gauge sampled at snapshot time, not a counter).
    pub distinct_streams: u64,
    /// Bytes of shared weight-stream pool words across resident models.
    pub pool_bytes: u64,
    /// Bytes of per-lane pool indices across resident models.
    pub index_bytes: u64,
    /// Bytes the materialized per-lane layout would need for the same
    /// resident models.
    pub materialized_bytes: u64,
    /// Weight-bank bytes actually resident across cached models.
    pub resident_bytes: u64,
    /// Kernel-tier code (`KernelKind::code`) of the autotuned plan of the
    /// most recently executed model — a gauge; 0 (`scalar`) until the
    /// first micro-batch runs.
    pub plan_kernel: u64,
    /// Tile width of that plan (0 until the first micro-batch runs).
    pub plan_tile: u64,
    /// Requests answered with `ShuttingDown` (arrived after the admission
    /// queue closed for shutdown).
    pub rejected_shutdown: u64,
    /// Admission-queue shard count (gauge; 1 = unsharded).
    pub shards: u64,
    /// Highest single-shard queue depth observed (`queue_depth_hwm` stays
    /// the global high-water mark across all shards).
    pub shard_depth_hwm: u64,
    /// Requests a worker took from a shard other than its own.
    pub queue_steals: u64,
    /// Currently open client connections (gauge sampled at snapshot time).
    pub active_connections: u64,
    /// Highest concurrent open-connection count observed since startup.
    pub active_connections_hwm: u64,
    /// Client connections accepted since startup.
    pub conns_opened: u64,
    /// Idle connections closed by the reactor's idle timeout.
    pub idle_reaped: u64,
    /// 1 when the readiness-reactor I/O path is active, 0 for the
    /// thread-per-connection fallback (gauge).
    pub reactor_mode: u64,
    /// Requests answered with `Warming` (their model's prepare was still
    /// running on the background compile thread).
    pub rejected_warming: u64,
    /// Model prepares completed by the serving process (warm-up plus
    /// background recompiles after eviction).
    pub prepares_completed: u64,
    /// Summed wall-clock milliseconds of those prepares.
    pub prepare_ms_total: u64,
    /// Prepares currently executing on the background compile thread
    /// (gauge).
    pub prepares_in_flight: u64,
}

impl StatsSnapshot {
    /// Mean queue wait of completed requests, in milliseconds.
    pub fn mean_queue_wait_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.queue_wait_ns as f64 / self.completed as f64 / 1e6
        }
    }

    /// Mean service time of completed requests, in milliseconds.
    pub fn mean_service_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.service_ns as f64 / self.completed as f64 / 1e6
        }
    }

    /// Mean micro-batch size.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_requests as f64 / self.batches as f64
        }
    }

    /// Fraction of MAC lanes whose word work was skipped (saturation +
    /// zero segments) out of all lanes presented to the kernels.
    pub fn skip_fraction(&self) -> f64 {
        let skipped = self.sat_lanes_skipped + self.zero_seg_skips;
        let total = self.mac_lanes + skipped;
        if total == 0 {
            0.0
        } else {
            skipped as f64 / total as f64
        }
    }

    fn to_words(self) -> [u64; STATS_WORDS] {
        [
            self.received,
            self.accepted,
            self.completed,
            self.rejected_overload,
            self.rejected_malformed,
            self.rejected_unknown_model,
            self.expired,
            self.failed,
            self.queue_depth_hwm,
            self.queue_wait_ns,
            self.service_ns,
            self.batches,
            self.batch_requests,
            self.mac_lanes,
            self.sat_group_exits,
            self.sat_lanes_skipped,
            self.zero_seg_skips,
            self.tiles,
            self.tiled_requests,
            self.rejected_model_budget,
            self.distinct_streams,
            self.pool_bytes,
            self.index_bytes,
            self.materialized_bytes,
            self.resident_bytes,
            self.plan_kernel,
            self.plan_tile,
            self.rejected_shutdown,
            self.shards,
            self.shard_depth_hwm,
            self.queue_steals,
            self.active_connections,
            self.conns_opened,
            self.idle_reaped,
            self.reactor_mode,
            self.active_connections_hwm,
            self.rejected_warming,
            self.prepares_completed,
            self.prepare_ms_total,
            self.prepares_in_flight,
        ]
    }

    fn from_words(w: [u64; STATS_WORDS]) -> StatsSnapshot {
        StatsSnapshot {
            received: w[0],
            accepted: w[1],
            completed: w[2],
            rejected_overload: w[3],
            rejected_malformed: w[4],
            rejected_unknown_model: w[5],
            expired: w[6],
            failed: w[7],
            queue_depth_hwm: w[8],
            queue_wait_ns: w[9],
            service_ns: w[10],
            batches: w[11],
            batch_requests: w[12],
            mac_lanes: w[13],
            sat_group_exits: w[14],
            sat_lanes_skipped: w[15],
            zero_seg_skips: w[16],
            tiles: w[17],
            tiled_requests: w[18],
            rejected_model_budget: w[19],
            distinct_streams: w[20],
            pool_bytes: w[21],
            index_bytes: w[22],
            materialized_bytes: w[23],
            resident_bytes: w[24],
            plan_kernel: w[25],
            plan_tile: w[26],
            rejected_shutdown: w[27],
            shards: w[28],
            shard_depth_hwm: w[29],
            queue_steals: w[30],
            active_connections: w[31],
            conns_opened: w[32],
            idle_reaped: w[33],
            reactor_mode: w[34],
            active_connections_hwm: w[35],
            rejected_warming: w[36],
            prepares_completed: w[37],
            prepare_ms_total: w[38],
            prepares_in_flight: w[39],
        }
    }
}

/// A decoded protocol frame.
// The stats variant dominates the enum size (40 gauge words), but stats
// frames are rare one-off exchanges — boxing would cost every match site
// for a path that is never hot.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: classify one image.
    InferRequest(InferRequest),
    /// Server → client: the logits.
    InferResponse(InferResponse),
    /// Server → client: a typed failure.
    Error(ErrorFrame),
    /// Client → server: request a statistics snapshot (header-only; the
    /// `u64` is the echoed request id).
    StatsRequest(u64),
    /// Server → client: the statistics snapshot (`u64` = echoed id).
    StatsResponse(u64, StatsSnapshot),
}

impl Frame {
    /// The request id carried in the frame header.
    pub fn request_id(&self) -> u64 {
        match self {
            Frame::InferRequest(r) => r.request_id,
            Frame::InferResponse(r) => r.request_id,
            Frame::Error(e) => e.request_id,
            Frame::StatsRequest(id) => *id,
            Frame::StatsResponse(id, _) => *id,
        }
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The transport failed (closed connection, timeout, reset). Not
    /// answerable — the connection is gone or unusable.
    Io(io::Error),
    /// The bytes violate the protocol. `request_id` is the best-effort id
    /// to echo in an [`ErrorFrame`] (0 when the header itself was bad);
    /// `recoverable` says whether the stream is still frame-aligned (the
    /// payload was fully consumed) so the connection can continue.
    Malformed {
        /// Best-effort id to echo.
        request_id: u64,
        /// Whether the reader may keep using the connection.
        recoverable: bool,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Malformed { reason, .. } => write!(f, "malformed frame: {reason}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

fn malformed(request_id: u64, recoverable: bool, reason: impl Into<String>) -> WireError {
    WireError::Malformed {
        request_id,
        recoverable,
        reason: reason.into(),
    }
}

// --- encoding -------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes `frame` to wire bytes (header + payload).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let (ty, payload) = match frame {
        Frame::InferRequest(r) => (T_INFER_REQUEST, encode_infer_request(r)),
        Frame::InferResponse(r) => (T_INFER_RESPONSE, encode_infer_response(r)),
        Frame::Error(e) => (T_ERROR, encode_error(e)),
        Frame::StatsRequest(_) => (T_STATS_REQUEST, Vec::new()),
        Frame::StatsResponse(_, s) => (T_STATS_RESPONSE, encode_stats(s)),
    };
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut out, MAGIC);
    out.push(VERSION);
    out.push(ty);
    put_u16(&mut out, 0);
    put_u64(&mut out, frame.request_id());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

fn encode_infer_request(r: &InferRequest) -> Vec<u8> {
    let mut p = Vec::with_capacity(24 + 4 * r.shape.len() + 4 * r.values.len());
    put_u32(&mut p, r.model_id);
    put_u32(&mut p, r.deadline_micros);
    put_u32(&mut p, r.stream_len.unwrap_or(0));
    put_f32(&mut p, r.margin.unwrap_or(-1.0));
    p.push(r.shape.len() as u8);
    for &d in &r.shape {
        put_u32(&mut p, d);
    }
    put_u32(&mut p, r.values.len() as u32);
    for &v in &r.values {
        put_f32(&mut p, v);
    }
    p
}

fn encode_infer_response(r: &InferResponse) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + 4 * r.logits.len());
    put_u32(&mut p, r.effective_len);
    put_u32(&mut p, r.logits.len() as u32);
    for &v in &r.logits {
        put_f32(&mut p, v);
    }
    p
}

fn encode_error(e: &ErrorFrame) -> Vec<u8> {
    let msg = e.message.as_bytes();
    let take = msg.len().min(u16::MAX as usize);
    let mut p = Vec::with_capacity(3 + take);
    p.push(e.code as u8);
    put_u16(&mut p, take as u16);
    p.extend_from_slice(&msg[..take]);
    p
}

fn encode_stats(s: &StatsSnapshot) -> Vec<u8> {
    let mut p = Vec::with_capacity(STATS_WORDS * 8);
    for w in s.to_words() {
        put_u64(&mut p, w);
    }
    p
}

// --- decoding -------------------------------------------------------------

/// A bounds-checked little-endian reader over a payload slice.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

/// Decodes one frame from `header ++ payload` bytes already in memory.
///
/// # Errors
///
/// [`WireError::Malformed`] with `recoverable = true` (the caller consumed
/// a well-delimited frame, the stream is still aligned).
pub fn decode_frame(ty: u8, request_id: u64, payload: &[u8]) -> Result<Frame, WireError> {
    let mk = |reason: String| malformed(request_id, true, reason);
    match ty {
        T_INFER_REQUEST => decode_infer_request(request_id, payload).map_err(mk),
        T_INFER_RESPONSE => decode_infer_response(request_id, payload).map_err(mk),
        T_ERROR => decode_error(request_id, payload).map_err(mk),
        T_STATS_REQUEST => {
            if payload.is_empty() {
                Ok(Frame::StatsRequest(request_id))
            } else {
                Err(mk("stats request carries no payload".into()))
            }
        }
        T_STATS_RESPONSE => decode_stats(request_id, payload).map_err(mk),
        other => Err(mk(format!("unknown frame type {other}"))),
    }
}

fn decode_infer_request(request_id: u64, payload: &[u8]) -> Result<Frame, String> {
    let mut rd = Rd::new(payload);
    let model_id = rd.u32()?;
    let deadline_micros = rd.u32()?;
    let stream_raw = rd.u32()?;
    let margin_raw = rd.f32()?;
    let stream_len = (stream_raw != 0).then_some(stream_raw);
    let margin = if margin_raw.is_nan() {
        return Err("margin override is NaN".into());
    } else if margin_raw < 0.0 {
        None
    } else {
        Some(margin_raw)
    };
    if stream_len.is_some() && margin.is_some() {
        return Err("at most one of stream_len/margin may be overridden".into());
    }
    let ndim = rd.u8()? as usize;
    if ndim == 0 || ndim > MAX_DIMS {
        return Err(format!("tensor rank {ndim} outside 1..={MAX_DIMS}"));
    }
    let mut shape = Vec::with_capacity(ndim);
    let mut product = 1usize;
    for _ in 0..ndim {
        let d = rd.u32()?;
        product = product
            .checked_mul(d as usize)
            .ok_or_else(|| "tensor shape overflows".to_string())?;
        shape.push(d);
    }
    let n = rd.u32()? as usize;
    if n != product {
        return Err(format!(
            "value count {n} does not match shape product {product}"
        ));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(rd.f32()?);
    }
    rd.done()?;
    Ok(Frame::InferRequest(InferRequest {
        request_id,
        model_id,
        deadline_micros,
        stream_len,
        margin,
        shape,
        values,
    }))
}

fn decode_infer_response(request_id: u64, payload: &[u8]) -> Result<Frame, String> {
    let mut rd = Rd::new(payload);
    let effective_len = rd.u32()?;
    let n = rd.u32()? as usize;
    let mut logits = Vec::with_capacity(n);
    for _ in 0..n {
        logits.push(rd.f32()?);
    }
    rd.done()?;
    Ok(Frame::InferResponse(InferResponse {
        request_id,
        effective_len,
        logits,
    }))
}

fn decode_error(request_id: u64, payload: &[u8]) -> Result<Frame, String> {
    let mut rd = Rd::new(payload);
    let code_raw = rd.u8()?;
    let code =
        ErrorCode::from_u8(code_raw).ok_or_else(|| format!("unknown error code {code_raw}"))?;
    let len = rd.u16()? as usize;
    let message = String::from_utf8(rd.take(len)?.to_vec())
        .map_err(|_| "error message is not UTF-8".to_string())?;
    rd.done()?;
    Ok(Frame::Error(ErrorFrame {
        request_id,
        code,
        message,
    }))
}

fn decode_stats(request_id: u64, payload: &[u8]) -> Result<Frame, String> {
    let mut rd = Rd::new(payload);
    let mut w = [0u64; STATS_WORDS];
    for slot in &mut w {
        *slot = rd.u64()?;
    }
    rd.done()?;
    Ok(Frame::StatsResponse(
        request_id,
        StatsSnapshot::from_words(w),
    ))
}

/// A validated frame header.
#[derive(Debug, Clone, Copy)]
pub struct FrameHeader {
    /// Frame type tag (validated later by [`decode_frame`]).
    pub ty: u8,
    /// Request id to echo.
    pub request_id: u64,
    /// Declared payload size in bytes (already checked against the cap).
    pub payload_len: usize,
}

/// Validates the fixed 20-byte header.
///
/// # Errors
///
/// [`WireError::Malformed`] with `recoverable = false` for bad
/// magic/version/reserved bytes or an oversized payload — after any of
/// those the stream can no longer be trusted to be frame-aligned.
pub fn parse_header(
    header: &[u8; HEADER_LEN],
    max_payload: usize,
) -> Result<FrameHeader, WireError> {
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(malformed(0, false, format!("bad magic {magic:#010x}")));
    }
    let version = header[4];
    if version != VERSION {
        return Err(malformed(
            0,
            false,
            format!("unsupported version {version}"),
        ));
    }
    let ty = header[5];
    let reserved = u16::from_le_bytes(header[6..8].try_into().unwrap());
    let request_id = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if reserved != 0 {
        return Err(malformed(request_id, false, "reserved header bytes set"));
    }
    let payload_len = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
    if payload_len > max_payload {
        return Err(malformed(
            request_id,
            false,
            format!("payload of {payload_len} bytes exceeds the {max_payload}-byte cap"),
        ));
    }
    Ok(FrameHeader {
        ty,
        request_id,
        payload_len,
    })
}

/// Reads one frame from `r`, enforcing `max_payload`.
///
/// # Errors
///
/// * [`WireError::Io`] when the transport fails (including clean EOF,
///   surfaced as `UnexpectedEof` before any header byte).
/// * [`WireError::Malformed`] for protocol violations. `recoverable` is
///   `false` for bad magic/version/oversize (the stream can no longer be
///   trusted to be frame-aligned) and `true` for a well-delimited frame
///   with bad contents.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let h = parse_header(&header, max_payload)?;
    let mut payload = vec![0u8; h.payload_len];
    r.read_exact(&mut payload)?;
    decode_frame(h.ty, h.request_id, &payload)
}

/// Writes one frame to `w` and flushes it.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_message_truncates_at_u16() {
        let e = ErrorFrame {
            request_id: 1,
            code: ErrorCode::Internal,
            message: "x".repeat(70_000),
        };
        let bytes = encode_frame(&Frame::Error(e));
        let got = read_frame(&mut &bytes[..], DEFAULT_MAX_PAYLOAD).unwrap();
        match got {
            Frame::Error(e) => assert_eq!(e.message.len(), u16::MAX as usize),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshot_means_handle_zero_counts() {
        let s = StatsSnapshot::default();
        assert_eq!(s.mean_queue_wait_ms(), 0.0);
        assert_eq!(s.mean_service_ms(), 0.0);
        assert_eq!(s.mean_batch_size(), 0.0);
    }
}
