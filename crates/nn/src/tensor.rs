//! A small dense tensor over `f32`, shaped as `[channels, height, width]`
//! for feature maps or `[n]` for vectors.
//!
//! This is intentionally minimal: just what im2col convolution, pooling and
//! dense layers need, with validated shapes and deterministic
//! initialisation.

use crate::NnError;

/// Dense row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use acoustic_nn::Tensor;
///
/// # fn main() -> Result<(), acoustic_nn::NnError> {
/// let t = Tensor::zeros(&[2, 3, 3]);
/// assert_eq!(t.len(), 18);
/// assert_eq!(t.shape(), &[2, 3, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates an all-zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Wraps existing data in a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len()` differs from the
    /// product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, NnError> {
        let expect: usize = shape.iter().product();
        if data.len() != expect {
            return Err(NnError::ShapeMismatch {
                expected: shape.to_vec(),
                actual: vec![data.len()],
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads element `(c, y, x)` of a 3-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-D or the index is out of bounds.
    pub fn at3(&self, c: usize, y: usize, x: usize) -> f32 {
        assert_eq!(self.shape.len(), 3, "at3 requires a 3-D tensor");
        let (_, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[(c * h + y) * w + x]
    }

    /// Writes element `(c, y, x)` of a 3-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-D or the index is out of bounds.
    pub fn set3(&mut self, c: usize, y: usize, x: usize, v: f32) {
        assert_eq!(self.shape.len(), 3, "set3 requires a 3-D tensor");
        let (_, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[(c * h + y) * w + x] = v;
    }

    /// Reshapes in place (same element count).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if element counts differ.
    pub fn reshape(&mut self, shape: &[usize]) -> Result<(), NnError> {
        let expect: usize = shape.iter().product();
        if expect != self.data.len() {
            return Err(NnError::ShapeMismatch {
                expected: shape.to_vec(),
                actual: self.shape.clone(),
            });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Returns a flattened 1-D copy.
    pub fn to_flat(&self) -> Tensor {
        Tensor {
            shape: vec![self.data.len()],
            data: self.data.clone(),
        }
    }

    /// Element-wise maximum with a scalar (used by ReLU).
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Index of the maximum element (ties broken toward the lower index).
    ///
    /// Returns 0 for an empty tensor.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// Fills the tensor with deterministic pseudo-random values uniform in
    /// `[-scale, scale]` — a seeded He-style initialiser without external
    /// RNG dependencies in the hot path.
    pub fn fill_uniform(&mut self, seed: u64, scale: f32) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        for v in &mut self.data {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f32 / (1u64 << 24) as f32;
            *v = (2.0 * r - 1.0) * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_size() {
        let t = Tensor::zeros(&[4, 5]);
        assert_eq!(t.len(), 20);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 3]).is_err());
        let t = Tensor::from_vec(&[2, 2], vec![1.0; 4]).unwrap();
        assert_eq!(t.shape(), &[2, 2]);
    }

    #[test]
    fn at3_layout_is_chw() {
        let mut t = Tensor::zeros(&[2, 2, 3]);
        t.set3(1, 1, 2, 7.0);
        assert_eq!(t.at3(1, 1, 2), 7.0);
        // (c*h + y)*w + x = (1*2+1)*3+2 = 11
        assert_eq!(t.as_slice()[11], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        t.reshape(&[3, 2]).unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.as_slice()[5], 5.0);
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn argmax_finds_peak() {
        let t = Tensor::from_vec(&[4], vec![0.1, 0.9, 0.3, 0.9]).unwrap();
        assert_eq!(t.argmax(), 1); // first of the tie
        assert_eq!(Tensor::zeros(&[0]).argmax(), 0);
    }

    #[test]
    fn map_applies_elementwise() {
        let t = Tensor::from_vec(&[3], vec![-1.0, 0.0, 2.0]).unwrap();
        let r = t.map(|v| v.max(0.0));
        assert_eq!(r.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn fill_uniform_is_deterministic_and_bounded() {
        let mut a = Tensor::zeros(&[100]);
        let mut b = Tensor::zeros(&[100]);
        a.fill_uniform(42, 0.5);
        b.fill_uniform(42, 0.5);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| v.abs() <= 0.5));
        let mut c = Tensor::zeros(&[100]);
        c.fill_uniform(43, 0.5);
        assert_ne!(a, c);
    }
}
