use std::error::Error;
use std::fmt;

/// Errors produced by the CNN substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A tensor had the wrong shape for the requested operation.
    ShapeMismatch {
        /// Shape the operation expected.
        expected: Vec<usize>,
        /// Shape it received.
        actual: Vec<usize>,
    },
    /// A layer or network configuration parameter was invalid.
    InvalidConfig(String),
    /// Labels/classes were inconsistent with the network output.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// Number of classes the network produces.
        classes: usize,
    },
    /// An empty dataset or batch was supplied where data is required.
    EmptyData,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NnError::InvalidLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::EmptyData => write!(f, "empty dataset or batch"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_detail() {
        let e = NnError::ShapeMismatch {
            expected: vec![1, 2],
            actual: vec![3],
        };
        assert!(e.to_string().contains("[1, 2]"));
        assert!(NnError::EmptyData.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
