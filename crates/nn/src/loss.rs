//! Softmax cross-entropy loss.

use crate::{NnError, Tensor};

/// Computes softmax probabilities of a logit vector (numerically stable).
pub fn softmax(logits: &Tensor) -> Tensor {
    let max = logits
        .as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.as_slice().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(logits.shape(), exps.into_iter().map(|e| e / sum).collect())
        .expect("same shape")
}

/// Softmax cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(loss, grad)` where `grad = softmax(logits) − one_hot(label)`.
///
/// # Errors
///
/// Returns [`NnError::InvalidLabel`] if `label >= logits.len()`, and
/// [`NnError::EmptyData`] for an empty logit vector.
///
/// # Examples
///
/// ```
/// use acoustic_nn::loss::cross_entropy;
/// use acoustic_nn::Tensor;
///
/// # fn main() -> Result<(), acoustic_nn::NnError> {
/// let logits = Tensor::from_vec(&[3], vec![2.0, 0.1, 0.1])?;
/// let (loss, grad) = cross_entropy(&logits, 0)?;
/// assert!(loss < 0.5);          // confident and correct ⇒ small loss
/// assert!(grad.as_slice()[0] < 0.0); // pushes the true logit up
/// # Ok(())
/// # }
/// ```
pub fn cross_entropy(logits: &Tensor, label: usize) -> Result<(f32, Tensor), NnError> {
    if logits.is_empty() {
        return Err(NnError::EmptyData);
    }
    if label >= logits.len() {
        return Err(NnError::InvalidLabel {
            label,
            classes: logits.len(),
        });
    }
    let probs = softmax(logits);
    let p = probs.as_slice()[label].max(1e-12);
    let loss = -p.ln();
    let mut grad = probs;
    grad.as_mut_slice()[label] -= 1.0;
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let t = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let p = softmax(&t);
        let sum: f32 = p.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p.as_slice().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap());
        let b = softmax(&Tensor::from_vec(&[2], vec![101.0, 102.0]).unwrap());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_logits_give_ln_k_loss() {
        let t = Tensor::from_vec(&[10], vec![0.0; 10]).unwrap();
        let (loss, _) = cross_entropy(&t, 3).unwrap();
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_numeric() {
        let t = Tensor::from_vec(&[3], vec![0.5, -0.3, 0.9]).unwrap();
        let (_, grad) = cross_entropy(&t, 1).unwrap();
        let h = 1e-3;
        for i in 0..3 {
            let mut plus = t.clone();
            plus.as_mut_slice()[i] += h;
            let mut minus = t.clone();
            minus.as_mut_slice()[i] -= h;
            let numeric = (cross_entropy(&plus, 1).unwrap().0
                - cross_entropy(&minus, 1).unwrap().0)
                / (2.0 * h);
            assert!(
                (grad.as_slice()[i] - numeric).abs() < 1e-3,
                "dim {i}: {} vs {numeric}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn invalid_label_rejected() {
        let t = Tensor::from_vec(&[3], vec![0.0; 3]).unwrap();
        assert!(matches!(
            cross_entropy(&t, 3),
            Err(NnError::InvalidLabel {
                label: 3,
                classes: 3
            })
        ));
        assert!(cross_entropy(&Tensor::zeros(&[0]), 0).is_err());
    }

    #[test]
    fn gradient_sums_to_zero() {
        let t = Tensor::from_vec(&[5], vec![0.1, 0.9, -0.5, 0.3, 0.0]).unwrap();
        let (_, grad) = cross_entropy(&t, 2).unwrap();
        let sum: f32 = grad.as_slice().iter().sum();
        assert!(sum.abs() < 1e-6);
    }
}
