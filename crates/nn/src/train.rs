//! SGD training loop for OR-aware networks (§II-D).
//!
//! Training for ACOUSTIC differs from a conventional run in two ways:
//! every wide addition uses OR semantics (selected per layer by
//! [`AccumMode`]), and weights are clipped to `[−1, 1]` after each step so
//! they remain representable in split-unipolar form. Both exact-OR and
//! approximate-OR training share this loop; the measured wall-clock ratio
//! between them reproduces the paper's ~10× training-speedup claim.
//!
//! [`AccumMode`]: crate::layers::AccumMode

use crate::layers::Network;
use crate::loss::cross_entropy;
use crate::{NnError, Tensor};

/// One labelled sample: an input tensor and its class index.
pub type Sample = (Tensor, usize);

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            batch_size: 16,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy loss over the epoch.
    pub mean_loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
    /// Wall-clock seconds spent in this epoch.
    pub seconds: f64,
}

/// Runs one epoch of mini-batch SGD over `samples` in order (shuffle the
/// slice beforehand if desired; determinism is preferred here).
///
/// # Errors
///
/// * [`NnError::EmptyData`] if `samples` is empty or the batch size is zero.
/// * Propagates forward/backward errors.
pub fn train_epoch(
    net: &mut Network,
    samples: &[Sample],
    cfg: &SgdConfig,
) -> Result<EpochStats, NnError> {
    if samples.is_empty() || cfg.batch_size == 0 {
        return Err(NnError::EmptyData);
    }
    let start = std::time::Instant::now();
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    for batch in samples.chunks(cfg.batch_size) {
        for (input, label) in batch {
            let logits = net.forward(input)?;
            if logits.argmax() == *label {
                correct += 1;
            }
            let (loss, mut grad) = cross_entropy(&logits, *label)?;
            total_loss += loss as f64;
            // Average over the batch so the step size is batch-invariant.
            let scale = 1.0 / batch.len() as f32;
            for g in grad.as_mut_slice() {
                *g *= scale;
            }
            net.backward(&grad)?;
        }
        net.apply_update(cfg.lr, cfg.momentum);
    }
    Ok(EpochStats {
        mean_loss: (total_loss / samples.len() as f64) as f32,
        accuracy: correct as f64 / samples.len() as f64,
        seconds: start.elapsed().as_secs_f64(),
    })
}

/// Classification accuracy of `net` over `samples`.
///
/// # Errors
///
/// * [`NnError::EmptyData`] if `samples` is empty.
/// * Propagates forward-pass errors.
pub fn evaluate(net: &mut Network, samples: &[Sample]) -> Result<f64, NnError> {
    if samples.is_empty() {
        return Err(NnError::EmptyData);
    }
    let mut correct = 0usize;
    for (input, label) in samples {
        if net.predict(input)? == *label {
            correct += 1;
        }
    }
    Ok(correct as f64 / samples.len() as f64)
}

/// Trains for `epochs` epochs, returning per-epoch stats.
///
/// # Errors
///
/// Same conditions as [`train_epoch`].
pub fn train(
    net: &mut Network,
    samples: &[Sample],
    cfg: &SgdConfig,
    epochs: usize,
) -> Result<Vec<EpochStats>, NnError> {
    let mut stats = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        stats.push(train_epoch(net, samples, cfg)?);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{AccumMode, Dense, Network, Relu};

    /// A linearly separable 2-D toy problem.
    fn toy_samples() -> Vec<Sample> {
        let mut samples = Vec::new();
        for i in 0..40 {
            let t = i as f32 / 40.0;
            // class 0 near (t, 0), class 1 near (0, t)
            samples.push((
                Tensor::from_vec(&[2], vec![0.5 + 0.5 * t, 0.1 * t]).unwrap(),
                0,
            ));
            samples.push((
                Tensor::from_vec(&[2], vec![0.1 * t, 0.5 + 0.5 * t]).unwrap(),
                1,
            ));
        }
        samples
    }

    fn toy_net(mode: AccumMode) -> Network {
        let mut net = Network::new();
        net.push_dense(Dense::new(2, 8, mode).unwrap());
        net.push_relu(Relu::new());
        net.push_dense(Dense::new(8, 2, AccumMode::Linear).unwrap());
        net
    }

    #[test]
    fn linear_training_converges() {
        let mut net = toy_net(AccumMode::Linear);
        let samples = toy_samples();
        let cfg = SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            batch_size: 8,
        };
        let stats = train(&mut net, &samples, &cfg, 30).unwrap();
        let final_acc = evaluate(&mut net, &samples).unwrap();
        assert!(
            final_acc > 0.95,
            "accuracy {final_acc}, last loss {}",
            stats.last().unwrap().mean_loss
        );
    }

    #[test]
    fn or_approx_training_converges() {
        let mut net = toy_net(AccumMode::OrApprox);
        let samples = toy_samples();
        let cfg = SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            batch_size: 8,
        };
        train(&mut net, &samples, &cfg, 40).unwrap();
        let final_acc = evaluate(&mut net, &samples).unwrap();
        assert!(final_acc > 0.9, "accuracy {final_acc}");
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut net = toy_net(AccumMode::Linear);
        let samples = toy_samples();
        let stats = train(&mut net, &samples, &SgdConfig::default(), 10).unwrap();
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
    }

    #[test]
    fn empty_data_rejected() {
        let mut net = toy_net(AccumMode::Linear);
        assert!(train_epoch(&mut net, &[], &SgdConfig::default()).is_err());
        assert!(evaluate(&mut net, &[]).is_err());
        let cfg = SgdConfig {
            batch_size: 0,
            ..SgdConfig::default()
        };
        assert!(train_epoch(&mut net, &toy_samples(), &cfg).is_err());
    }

    #[test]
    fn stats_fields_are_sane() {
        let mut net = toy_net(AccumMode::Linear);
        let samples = toy_samples();
        let s = train_epoch(&mut net, &samples, &SgdConfig::default()).unwrap();
        assert!(s.mean_loss.is_finite() && s.mean_loss > 0.0);
        assert!((0.0..=1.0).contains(&s.accuracy));
        assert!(s.seconds >= 0.0);
    }
}
