//! Shape-accurate descriptors of the networks the paper evaluates.
//!
//! The performance simulator (like the paper's own, §IV-A) "models execution
//! time and data movement without simulating the actual computation" — it
//! needs layer *shapes*, not weights. This module provides those shapes for
//! LeNet-5, the CIFAR-10 CNN, the SVHN CNN, AlexNet, VGG-16, ResNet-18 and
//! GoogLeNet, plus derived statistics (MACs, weight/activation footprints).

use crate::NnError;

/// Pooling attached to a convolution output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolShape {
    /// Window side length.
    pub window: usize,
    /// Stride (= window for non-overlapping pooling).
    pub stride: usize,
    /// `true` for average pooling (ACOUSTIC's preference), `false` for max.
    pub average: bool,
}

/// One layer of a network, with all dimensions resolved.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LayerShape {
    /// A convolution (optionally followed by pooling).
    Conv {
        /// Layer name, e.g. `"conv1"`.
        name: String,
        /// Input channels.
        in_c: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Output channels (kernel count).
        out_c: usize,
        /// Kernel side length.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding per side.
        pad: usize,
        /// Convolution output height (pre-pooling).
        out_h: usize,
        /// Convolution output width (pre-pooling).
        out_w: usize,
        /// Pooling applied to the output, if any.
        pool: Option<PoolShape>,
    },
    /// A fully-connected layer.
    Fc {
        /// Layer name, e.g. `"fc6"`.
        name: String,
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

impl LayerShape {
    /// Layer name.
    pub fn name(&self) -> &str {
        match self {
            LayerShape::Conv { name, .. } | LayerShape::Fc { name, .. } => name,
        }
    }

    /// Multiply-accumulate operations of the layer (one MAC = one multiply +
    /// one accumulate).
    pub fn macs(&self) -> u64 {
        match self {
            LayerShape::Conv {
                in_c,
                out_c,
                k,
                out_h,
                out_w,
                ..
            } => (out_h * out_w * out_c * in_c * k * k) as u64,
            LayerShape::Fc {
                in_features,
                out_features,
                ..
            } => (in_features * out_features) as u64,
        }
    }

    /// Number of weights.
    pub fn weight_count(&self) -> u64 {
        match self {
            LayerShape::Conv { in_c, out_c, k, .. } => (out_c * in_c * k * k) as u64,
            LayerShape::Fc {
                in_features,
                out_features,
                ..
            } => (in_features * out_features) as u64,
        }
    }

    /// Number of output activations **after** any attached pooling.
    pub fn output_count(&self) -> u64 {
        match self {
            LayerShape::Conv {
                out_c,
                out_h,
                out_w,
                pool,
                ..
            } => {
                let (h, w) = pooled_hw(*out_h, *out_w, *pool);
                (out_c * h * w) as u64
            }
            LayerShape::Fc { out_features, .. } => *out_features as u64,
        }
    }

    /// Number of input activations.
    pub fn input_count(&self) -> u64 {
        match self {
            LayerShape::Conv {
                in_c, in_h, in_w, ..
            } => (in_c * in_h * in_w) as u64,
            LayerShape::Fc { in_features, .. } => *in_features as u64,
        }
    }

    /// `true` for convolution layers.
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerShape::Conv { .. })
    }
}

fn pooled_hw(h: usize, w: usize, pool: Option<PoolShape>) -> (usize, usize) {
    match pool {
        None => (h, w),
        Some(p) => ((h - p.window) / p.stride + 1, (w - p.window) / p.stride + 1),
    }
}

/// A whole network: name, input shape and resolved layers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NetworkShape {
    name: String,
    input: (usize, usize, usize),
    layers: Vec<LayerShape>,
}

impl NetworkShape {
    /// Assembles a network from already-resolved parts (used by tools that
    /// derive networks from existing ones, e.g. conv-only slices).
    pub fn from_parts(name: String, input: (usize, usize, usize), layers: Vec<LayerShape>) -> Self {
        NetworkShape {
            name,
            input,
            layers,
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input shape `(channels, height, width)`.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        self.input
    }

    /// The resolved layers.
    pub fn layers(&self) -> &[LayerShape] {
        &self.layers
    }

    /// Total MACs per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerShape::macs).sum()
    }

    /// Total weights.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(LayerShape::weight_count).sum()
    }

    /// MACs in convolution layers only (Table IV evaluates conv layers).
    pub fn conv_macs(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.is_conv())
            .map(LayerShape::macs)
            .sum()
    }

    /// Largest single-layer activation footprint (inputs + outputs), in
    /// values — sizes the activation scratchpads.
    pub fn peak_activation_count(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.input_count() + l.output_count())
            .max()
            .unwrap_or(0)
    }

    /// Largest single-layer weight count — sizes the weight buffer.
    pub fn peak_weight_count(&self) -> u64 {
        self.layers
            .iter()
            .map(LayerShape::weight_count)
            .max()
            .unwrap_or(0)
    }
}

/// Incremental builder tracking spatial dimensions.
#[derive(Debug, Clone)]
pub struct NetworkShapeBuilder {
    name: String,
    input: (usize, usize, usize),
    cur_c: usize,
    cur_h: usize,
    cur_w: usize,
    layers: Vec<LayerShape>,
    conv_idx: usize,
    fc_idx: usize,
}

impl NetworkShapeBuilder {
    /// Starts a network with input `(channels, height, width)`.
    pub fn new(name: &str, c: usize, h: usize, w: usize) -> Self {
        NetworkShapeBuilder {
            name: name.to_string(),
            input: (c, h, w),
            cur_c: c,
            cur_h: h,
            cur_w: w,
            layers: Vec::new(),
            conv_idx: 0,
            fc_idx: 0,
        }
    }

    /// Adds a convolution.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the kernel does not fit the
    /// current feature map.
    pub fn conv(
        mut self,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, NnError> {
        if self.cur_h + 2 * pad < k || self.cur_w + 2 * pad < k {
            return Err(NnError::InvalidConfig(format!(
                "kernel {k} larger than padded input {}x{} in {}",
                self.cur_h, self.cur_w, self.name
            )));
        }
        let out_h = (self.cur_h + 2 * pad - k) / stride + 1;
        let out_w = (self.cur_w + 2 * pad - k) / stride + 1;
        self.conv_idx += 1;
        self.layers.push(LayerShape::Conv {
            name: format!("conv{}", self.conv_idx),
            in_c: self.cur_c,
            in_h: self.cur_h,
            in_w: self.cur_w,
            out_c,
            k,
            stride,
            pad,
            out_h,
            out_w,
            pool: None,
        });
        self.cur_c = out_c;
        self.cur_h = out_h;
        self.cur_w = out_w;
        Ok(self)
    }

    /// Attaches pooling to the most recent convolution.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if there is no preceding conv,
    /// it already has pooling, or the window does not fit.
    pub fn pool(mut self, window: usize, stride: usize, average: bool) -> Result<Self, NnError> {
        let Some(LayerShape::Conv {
            out_h, out_w, pool, ..
        }) = self.layers.last_mut()
        else {
            return Err(NnError::InvalidConfig(
                "pool must follow a convolution".into(),
            ));
        };
        if pool.is_some() {
            return Err(NnError::InvalidConfig(
                "convolution already has pooling".into(),
            ));
        }
        if *out_h < window || *out_w < window {
            return Err(NnError::InvalidConfig(format!(
                "pool window {window} larger than conv output {out_h}x{out_w}"
            )));
        }
        *pool = Some(PoolShape {
            window,
            stride,
            average,
        });
        let (h, w) = pooled_hw(*out_h, *out_w, *pool);
        self.cur_h = h;
        self.cur_w = w;
        Ok(self)
    }

    /// Current tracked feature map as `(channels, height, width)`.
    pub fn current_chw(&self) -> (usize, usize, usize) {
        (self.cur_c, self.cur_h, self.cur_w)
    }

    /// Current tracked spatial dimensions `(height, width)`.
    pub fn current_hw(&self) -> (usize, usize) {
        (self.cur_h, self.cur_w)
    }

    /// Adds a same-padded stride-1 convolution *branch* at explicit input
    /// dimensions without advancing the tracked shape — inception modules
    /// run several branches over one input and concatenate the results
    /// (advance the shape afterwards with [`NetworkShapeBuilder::set_current`]).
    #[must_use]
    pub fn inception_branch(
        mut self,
        in_c: usize,
        h: usize,
        w: usize,
        out_c: usize,
        k: usize,
    ) -> Self {
        self.conv_idx += 1;
        self.layers.push(LayerShape::Conv {
            name: format!("conv{}", self.conv_idx),
            in_c,
            in_h: h,
            in_w: w,
            out_c,
            k,
            stride: 1,
            pad: k / 2,
            out_h: h,
            out_w: w,
            pool: None,
        });
        self
    }

    /// Overrides the tracked feature-map shape (branch concatenation,
    /// global pooling).
    pub fn set_current(&mut self, c: usize, h: usize, w: usize) {
        self.cur_c = c;
        self.cur_h = h;
        self.cur_w = w;
    }

    /// Collapses the feature map and adds a fully-connected layer.
    pub fn fc(mut self, out_features: usize) -> Self {
        let in_features = self.cur_c * self.cur_h * self.cur_w;
        self.fc_idx += 1;
        self.layers.push(LayerShape::Fc {
            name: format!("fc{}", self.fc_idx),
            in_features,
            out_features,
        });
        self.cur_c = out_features;
        self.cur_h = 1;
        self.cur_w = 1;
        self
    }

    /// Finalises the network.
    pub fn build(self) -> NetworkShape {
        NetworkShape {
            name: self.name,
            input: self.input,
            layers: self.layers,
        }
    }
}

/// LeNet-5 on 28×28 grayscale digits (padded first conv, classic 6-16-120
/// channel progression).
pub fn lenet5() -> NetworkShape {
    NetworkShapeBuilder::new("LeNet-5", 1, 28, 28)
        .conv(6, 5, 1, 2)
        .and_then(|b| b.pool(2, 2, true))
        .and_then(|b| b.conv(16, 5, 1, 0))
        .and_then(|b| b.pool(2, 2, true))
        .map(|b| b.fc(120).fc(84).fc(10))
        .expect("static architecture is valid")
        .build()
}

/// The small CIFAR-10 CNN used in Tables II–IV: three 3×3 conv blocks with
/// 2×2 average pooling, one hidden FC layer.
pub fn cifar10_cnn() -> NetworkShape {
    NetworkShapeBuilder::new("CIFAR-10 CNN", 3, 32, 32)
        .conv(32, 3, 1, 1)
        .and_then(|b| b.pool(2, 2, true))
        .and_then(|b| b.conv(64, 3, 1, 1))
        .and_then(|b| b.pool(2, 2, true))
        .and_then(|b| b.conv(64, 3, 1, 1))
        .and_then(|b| b.pool(2, 2, true))
        .map(|b| b.fc(64).fc(10))
        .expect("static architecture is valid")
        .build()
}

/// The SVHN CNN of Table II — same topology as the CIFAR-10 CNN (32×32 RGB
/// digit crops).
pub fn svhn_cnn() -> NetworkShape {
    let mut net = cifar10_cnn();
    net.name = "SVHN CNN".to_string();
    net
}

/// AlexNet on 227×227 ImageNet crops (ungrouped, torchvision-style shapes).
pub fn alexnet() -> NetworkShape {
    NetworkShapeBuilder::new("AlexNet", 3, 227, 227)
        .conv(96, 11, 4, 0)
        .and_then(|b| b.pool(3, 2, false))
        .and_then(|b| b.conv(256, 5, 1, 2))
        .and_then(|b| b.pool(3, 2, false))
        .and_then(|b| b.conv(384, 3, 1, 1))
        .and_then(|b| b.conv(384, 3, 1, 1))
        .and_then(|b| b.conv(256, 3, 1, 1))
        .and_then(|b| b.pool(3, 2, false))
        .map(|b| b.fc(4096).fc(4096).fc(1000))
        .expect("static architecture is valid")
        .build()
}

/// VGG-16 on 224×224 ImageNet crops.
pub fn vgg16() -> NetworkShape {
    let blocks: &[(usize, usize)] = &[(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut b = NetworkShapeBuilder::new("VGG-16", 3, 224, 224);
    for &(ch, reps) in blocks {
        for r in 0..reps {
            b = b.conv(ch, 3, 1, 1).expect("static architecture is valid");
            if r == reps - 1 {
                b = b.pool(2, 2, false).expect("static architecture is valid");
            }
        }
    }
    b.fc(4096).fc(4096).fc(1000).build()
}

/// ResNet-18 on 224×224 ImageNet crops. Residual additions are free in the
/// counter domain and are not listed; 1×1 downsample convolutions are.
pub fn resnet18() -> NetworkShape {
    let mut b = NetworkShapeBuilder::new("ResNet-18", 3, 224, 224)
        .conv(64, 7, 2, 3)
        .and_then(|bb| bb.pool(2, 2, false))
        .expect("static architecture is valid");
    // (channels, first-block stride) per stage; two basic blocks per stage.
    for &(ch, first_stride) in &[(64usize, 1usize), (128, 2), (256, 2), (512, 2)] {
        for block in 0..2 {
            let stride = if block == 0 { first_stride } else { 1 };
            if block == 0 && first_stride == 2 {
                // Downsample shortcut 1×1 conv runs on the block input.
                // Listed before the main path for shape bookkeeping: the 3×3
                // stride-2 conv below consumes the same input dims.
                b = b
                    .conv(ch, 3, stride, 1)
                    .and_then(|bb| bb.conv(ch, 3, 1, 1))
                    .expect("static architecture is valid");
                // 1×1 shortcut: same output dims; account its MACs/weights.
                let (in_c, in_h, in_w) = (ch / 2, b.cur_h * stride, b.cur_w * stride);
                b.conv_idx += 1;
                b.layers.push(LayerShape::Conv {
                    name: format!("conv{}_ds", b.conv_idx),
                    in_c,
                    in_h,
                    in_w,
                    out_c: ch,
                    k: 1,
                    stride,
                    pad: 0,
                    out_h: b.cur_h,
                    out_w: b.cur_w,
                    pool: None,
                });
            } else {
                b = b
                    .conv(ch, 3, stride, 1)
                    .and_then(|bb| bb.conv(ch, 3, 1, 1))
                    .expect("static architecture is valid");
            }
        }
    }
    b = b.pool(7, 7, true).expect("static architecture is valid");
    b.fc(1000).build()
}

/// GoogLeNet / Inception-v1 on 224×224 ImageNet crops — the other "newer
/// CNN architecture" §III-B cites for its single small FC layer. Inception
/// branches run as independent convolutions over the same input; since the
/// performance model only needs per-layer shapes (MACs, weights, I/O), the
/// four branches of each module are listed sequentially.
pub fn googlenet() -> NetworkShape {
    let mut b = NetworkShapeBuilder::new("GoogLeNet", 3, 224, 224)
        .conv(64, 7, 2, 3)
        .and_then(|bb| bb.pool(2, 2, false))
        .and_then(|bb| bb.conv(64, 1, 1, 0))
        .and_then(|bb| bb.conv(192, 3, 1, 1))
        .and_then(|bb| bb.pool(2, 2, false))
        .expect("static architecture is valid");

    // (in_c, 1x1, 3x3-reduce, 3x3, 5x5-reduce, 5x5, pool-proj) per module;
    // a trailing `true` marks a 2x2 pool after the module.
    #[allow(clippy::type_complexity)]
    let modules: &[(usize, [usize; 6], bool)] = &[
        (192, [64, 96, 128, 16, 32, 32], false),     // 3a
        (256, [128, 128, 192, 32, 96, 64], true),    // 3b + pool
        (480, [192, 96, 208, 16, 48, 64], false),    // 4a
        (512, [160, 112, 224, 24, 64, 64], false),   // 4b
        (512, [128, 128, 256, 24, 64, 64], false),   // 4c
        (512, [112, 144, 288, 32, 64, 64], false),   // 4d
        (528, [256, 160, 320, 32, 128, 128], true),  // 4e + pool
        (832, [256, 160, 320, 32, 128, 128], false), // 5a
        (832, [384, 192, 384, 48, 128, 128], false), // 5b
    ];
    for &(in_c, m, pool_after) in modules {
        let out_c = m[0] + m[2] + m[4] + m[5];
        let (h, w) = (b.current_hw().0, b.current_hw().1);
        // Branch shapes share the module input; emit them at the same dims
        // by constructing each branch from the module input channel count.
        b = b
            .inception_branch(in_c, h, w, m[0], 1) // 1x1
            .inception_branch(in_c, h, w, m[1], 1) // 3x3 reduce
            .inception_branch(m[1], h, w, m[2], 3) // 3x3
            .inception_branch(in_c, h, w, m[3], 1) // 5x5 reduce
            .inception_branch(m[3], h, w, m[4], 5) // 5x5
            .inception_branch(in_c, h, w, m[5], 1); // pool projection
        b.set_current(out_c, h, w);
        if pool_after {
            let (_, hh, ww) = (out_c, h / 2, w / 2);
            b.set_current(out_c, hh, ww);
        }
    }
    // Global average pool to 1x1 then the single small FC layer.
    let (c, _, _) = b.current_chw();
    b.set_current(c, 1, 1);
    b.fc(1000).build()
}

/// All the networks of Table III, in paper order.
pub fn table3_networks() -> Vec<NetworkShape> {
    vec![alexnet(), vgg16(), resnet18(), cifar10_cnn()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet5_shapes() {
        let net = lenet5();
        // conv1: 28x28x6 padded; pool -> 14; conv2 -> 10x10x16; pool -> 5.
        let LayerShape::Fc { in_features, .. } = &net.layers()[2] else {
            panic!("expected fc after two convs");
        };
        assert_eq!(*in_features, 16 * 5 * 5);
        assert_eq!(net.layers().len(), 5);
        // LeNet-5 parameter count is famously ~60k (we omit biases).
        let w = net.total_weights();
        assert!((50_000..70_000).contains(&(w as usize)), "weights {w}");
    }

    #[test]
    fn alexnet_macs_in_published_range() {
        let net = alexnet();
        let g = net.total_macs() as f64 / 1e9;
        // Ungrouped AlexNet is ~1.1 GMAC/inference.
        assert!((0.6..1.6).contains(&g), "AlexNet GMACs {g}");
        let w = net.total_weights() as f64 / 1e6;
        assert!((55.0..65.0).contains(&w), "AlexNet Mweights {w}");
    }

    #[test]
    fn vgg16_macs_in_published_range() {
        let net = vgg16();
        let g = net.total_macs() as f64 / 1e9;
        assert!((14.0..17.0).contains(&g), "VGG-16 GMACs {g}");
        let w = net.total_weights() as f64 / 1e6;
        assert!((130.0..145.0).contains(&w), "VGG-16 Mweights {w}");
    }

    #[test]
    fn resnet18_macs_in_published_range() {
        let net = resnet18();
        let g = net.total_macs() as f64 / 1e9;
        assert!((1.5..2.2).contains(&g), "ResNet-18 GMACs {g}");
        let w = net.total_weights() as f64 / 1e6;
        assert!((10.5..13.0).contains(&w), "ResNet-18 Mweights {w}");
    }

    #[test]
    fn resnet18_is_about_twice_alexnet_compute() {
        // §IV-D: "Resnet-18 being ≈2x more computationally intensive" than
        // AlexNet.
        let ratio = resnet18().total_macs() as f64 / alexnet().total_macs() as f64;
        assert!((1.4..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn alexnet_fc_weights_dominate() {
        // §IV-D: AlexNet latency is dominated by FC layers with tens of MB
        // of weights.
        let net = alexnet();
        let fc_weights: u64 = net
            .layers()
            .iter()
            .filter(|l| !l.is_conv())
            .map(LayerShape::weight_count)
            .sum();
        assert!(fc_weights > 50_000_000);
        assert!(fc_weights as f64 / net.total_weights() as f64 > 0.9);
    }

    #[test]
    fn resnet_fc_is_small() {
        let net = resnet18();
        let fc_weights: u64 = net
            .layers()
            .iter()
            .filter(|l| !l.is_conv())
            .map(LayerShape::weight_count)
            .sum();
        assert_eq!(fc_weights, 512 * 1000);
    }

    #[test]
    fn builder_rejects_oversized_kernel() {
        assert!(NetworkShapeBuilder::new("x", 1, 4, 4)
            .conv(8, 7, 1, 0)
            .is_err());
    }

    #[test]
    fn pool_requires_conv() {
        assert!(NetworkShapeBuilder::new("x", 1, 8, 8)
            .pool(2, 2, true)
            .is_err());
        let b = NetworkShapeBuilder::new("x", 1, 8, 8)
            .conv(4, 3, 1, 1)
            .unwrap()
            .pool(2, 2, true)
            .unwrap();
        assert!(b.pool(2, 2, true).is_err());
    }

    #[test]
    fn cifar_cnn_peaks_fit_lp_memories() {
        // The LP variant's 600 KB activation memory should hold the CIFAR
        // CNN's peak activations at 1 byte each.
        let net = cifar10_cnn();
        assert!(net.peak_activation_count() < 600 * 1024);
        // And the 147.5 KB weight buffer holds its largest conv layer.
        let biggest_conv = net
            .layers()
            .iter()
            .filter(|l| l.is_conv())
            .map(LayerShape::weight_count)
            .max()
            .unwrap();
        assert!(biggest_conv < 147 * 1024);
    }

    #[test]
    fn svhn_shares_cifar_topology() {
        assert_eq!(svhn_cnn().total_macs(), cifar10_cnn().total_macs());
        assert_eq!(svhn_cnn().name(), "SVHN CNN");
    }

    #[test]
    fn output_counts_respect_pooling() {
        let net = lenet5();
        let LayerShape::Conv { .. } = &net.layers()[0] else {
            panic!()
        };
        assert_eq!(net.layers()[0].output_count(), 6 * 14 * 14);
    }
}

#[cfg(test)]
mod googlenet_tests {
    use super::*;

    #[test]
    fn googlenet_macs_in_published_range() {
        // GoogLeNet is ~1.5 GMAC / ~6.8 M params (we omit the aux heads).
        let net = googlenet();
        let g = net.total_macs() as f64 / 1e9;
        assert!((1.0..2.2).contains(&g), "GoogLeNet GMACs {g}");
        let m = net.total_weights() as f64 / 1e6;
        assert!((4.0..9.0).contains(&m), "GoogLeNet Mweights {m}");
    }

    #[test]
    fn googlenet_fc_is_single_and_small() {
        // §III-B: "newer CNN architectures like ResNet or Inception rely on
        // a single, relatively small FC layer".
        let net = googlenet();
        let fcs: Vec<_> = net.layers().iter().filter(|l| !l.is_conv()).collect();
        assert_eq!(fcs.len(), 1);
        assert_eq!(fcs[0].weight_count(), 1024 * 1000);
    }

    #[test]
    fn inception_branch_does_not_advance_shape() {
        let mut b = NetworkShapeBuilder::new("t", 8, 16, 16);
        let before = b.current_chw();
        b = b.inception_branch(8, 16, 16, 32, 3);
        assert_eq!(b.current_chw(), before);
        b.set_current(32, 16, 16);
        assert_eq!(b.current_chw(), (32, 16, 16));
    }
}
