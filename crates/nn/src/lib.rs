//! Minimal CNN substrate for the ACOUSTIC reproduction.
//!
//! The paper needs three things from a neural-network stack:
//!
//! 1. **Trainable small CNNs** whose additions can be replaced by OR-style
//!    saturating accumulation — exactly (`1 − Π(1 − vᵢ)`) or via the fast
//!    approximation of Eq. (1) (`1 − e^{−Σ}`) — so that Table II accuracies
//!    and the §II-D training-speedup claim can be reproduced
//!    ([`layers`], [`train`], [`orsum`]).
//! 2. **8-bit fixed-point quantization** as the accuracy baseline
//!    ([`fixedpoint`]).
//! 3. **Shape-accurate layer descriptors** of the evaluated networks
//!    (LeNet-5, CIFAR-10 CNN, SVHN CNN, AlexNet, VGG-16, ResNet-18) for the
//!    performance simulator ([`zoo`]).
//!
//! Everything is pure Rust, deterministic, and single-threaded.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fixedpoint;
pub mod layers;
pub mod loss;
pub mod orsum;
pub mod serialize;
pub mod tensor;
pub mod train;
pub mod zoo;

mod nn_error;

pub use nn_error::NnError;
pub use tensor::Tensor;
