//! OR-style saturating accumulation in the value domain (§II-B, §II-D).
//!
//! Training for ACOUSTIC replaces every wide addition by OR-addition. Two
//! forms are provided:
//!
//! * [`or_sum_exact`] — the true expectation `1 − Π(1 − vᵢ)`, whose backward
//!   pass costs a product per operand (the "~15× longer training runtime"
//!   the paper complains about),
//! * [`or_sum_approx`] — Eq. (1): `1 − e^{−Σvᵢ}`, an activation-function-like
//!   post-sum transform that restores fast GEMM-style training.
//!
//! Both operate on *non-negative* products (split-unipolar guarantees the
//! positive and negative contributions are accumulated separately).

pub use acoustic_core::accumulate::{or_approx, or_approx_derivative};

/// Exact OR accumulation of non-negative values clamped to `[0, 1]`:
/// `1 − Π(1 − min(vᵢ, 1))`.
///
/// # Examples
///
/// ```
/// use acoustic_nn::orsum::or_sum_exact;
///
/// let v = or_sum_exact(&[0.1, 0.1]);
/// assert!((v - 0.19).abs() < 1e-6);
/// ```
pub fn or_sum_exact(values: &[f64]) -> f64 {
    1.0 - values
        .iter()
        .map(|&v| 1.0 - v.clamp(0.0, 1.0))
        .product::<f64>()
}

/// Gradient of [`or_sum_exact`] with respect to each input:
/// `∂out/∂vⱼ = Π_{i≠j} (1 − vᵢ)`.
///
/// Inputs at or above 1.0 receive zero gradient (they are saturated).
pub fn or_sum_exact_grad(values: &[f64]) -> Vec<f64> {
    let clamped: Vec<f64> = values.iter().map(|&v| v.clamp(0.0, 1.0)).collect();
    let n = clamped.len();
    // Prefix/suffix products of (1 - v) for O(n) total gradient.
    let mut prefix = vec![1.0; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] * (1.0 - clamped[i]);
    }
    let mut suffix = vec![1.0; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] * (1.0 - clamped[i]);
    }
    (0..n)
        .map(|j| {
            if values[j] >= 1.0 || values[j] < 0.0 {
                0.0
            } else {
                prefix[j] * suffix[j + 1]
            }
        })
        .collect()
}

/// Fast approximation of the OR sum (paper Eq. 1): `1 − e^{−s}` where `s` is
/// the plain sum of inputs.
pub fn or_sum_approx(values: &[f64]) -> f64 {
    or_approx(values.iter().sum())
}

/// Relative error of the approximation against the exact OR for a given
/// operand set (the paper reports < 5 % on real training runs).
pub fn approx_relative_error(values: &[f64]) -> f64 {
    let exact = or_sum_exact(values);
    if exact.abs() < 1e-12 {
        0.0
    } else {
        (or_sum_approx(values) - exact).abs() / exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_two_input_formula() {
        assert!((or_sum_exact(&[0.3, 0.4]) - (0.3 + 0.4 - 0.12)).abs() < 1e-12);
    }

    #[test]
    fn exact_saturates_at_one() {
        assert_eq!(or_sum_exact(&[1.0, 0.5]), 1.0);
        assert!(or_sum_exact(&vec![0.5; 100]) <= 1.0);
    }

    #[test]
    fn exact_clamps_inputs() {
        // Values beyond 1 behave as 1; negatives as 0.
        assert_eq!(or_sum_exact(&[2.0]), 1.0);
        assert_eq!(or_sum_exact(&[-1.0, 0.25]), 0.25);
    }

    #[test]
    fn exact_grad_matches_numeric() {
        let vals = [0.1, 0.3, 0.05, 0.2];
        let grad = or_sum_exact_grad(&vals);
        let h = 1e-6;
        for j in 0..vals.len() {
            let mut plus = vals;
            plus[j] += h;
            let mut minus = vals;
            minus[j] -= h;
            let numeric = (or_sum_exact(&plus) - or_sum_exact(&minus)) / (2.0 * h);
            assert!(
                (grad[j] - numeric).abs() < 1e-5,
                "grad[{j}] {} vs numeric {numeric}",
                grad[j]
            );
        }
    }

    #[test]
    fn approx_within_five_percent_for_layer_scale_sums() {
        // Operand profiles shaped like conv products: many small values.
        for &n in &[9usize, 81, 576, 2304] {
            for &s in &[0.2, 0.5, 1.0, 1.5] {
                let vals = vec![s / n as f64; n];
                let rel = approx_relative_error(&vals);
                assert!(rel < 0.05, "n={n} s={s}: rel err {rel}");
            }
        }
    }

    #[test]
    fn approx_degrades_gracefully_for_few_large_operands() {
        // Two operands of 0.5: exact 0.75, approx 1-e^-1 = 0.632 (~16 %).
        let rel = approx_relative_error(&[0.5, 0.5]);
        assert!(rel > 0.05 && rel < 0.25);
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(or_sum_exact(&[]), 0.0);
        assert_eq!(or_sum_approx(&[]), 0.0);
        assert!(or_sum_exact_grad(&[]).is_empty());
    }
}
