//! Save/load trained networks in a simple line-oriented text format.
//!
//! Training for Table II takes minutes; stochastic evaluation is cheap.
//! Persisting trained networks lets the evaluation experiments re-run
//! without retraining. The format is deliberately plain text (one header
//! line per layer, one line of weights where applicable) — no external
//! dependencies, stable across versions, diff-able.
//!
//! ```text
//! acoustic-net v1
//! conv 1 6 5 1 2 or_approx
//! 0.125 -0.5 …          # out_c·in_c·k·k weights
//! avgpool 2
//! relu clamped
//! residual 3            # wraps the next 3 layers
//! …
//! end
//! ```

use std::fmt::Write as _;

use crate::layers::{
    AccumMode, AvgPool2d, Conv2d, Dense, MaxPool2d, NetLayer, Network, Relu, Residual,
};
use crate::NnError;

const MAGIC: &str = "acoustic-net v1";

/// Serialises a network to the text format.
///
/// # Examples
///
/// ```
/// use acoustic_nn::layers::{AccumMode, Dense, Network};
/// use acoustic_nn::serialize::{to_text, from_text};
///
/// # fn main() -> Result<(), acoustic_nn::NnError> {
/// let mut net = Network::new();
/// net.push_dense(Dense::new(4, 2, AccumMode::OrApprox)?);
/// let text = to_text(&net);
/// let back = from_text(&text)?;
/// assert_eq!(back.param_count(), net.param_count());
/// # Ok(())
/// # }
/// ```
pub fn to_text(net: &Network) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    write_layers(net.layers(), &mut out);
    out.push_str("end\n");
    out
}

fn write_layers(layers: &[NetLayer], out: &mut String) {
    for layer in layers {
        match layer {
            NetLayer::Conv(c) => {
                let _ = writeln!(
                    out,
                    "conv {} {} {} {} {} {}",
                    c.in_channels(),
                    c.out_channels(),
                    c.kernel(),
                    c.stride(),
                    c.padding(),
                    accum_name(c.accum_mode())
                );
                write_weights(c.weights(), out);
            }
            NetLayer::Dense(d) => {
                let _ = writeln!(
                    out,
                    "dense {} {} {}",
                    d.in_features(),
                    d.out_features(),
                    accum_name(d.accum_mode())
                );
                write_weights(d.weights(), out);
            }
            NetLayer::AvgPool(p) => {
                let _ = writeln!(out, "avgpool {}", p.window());
            }
            NetLayer::MaxPool(p) => {
                let _ = writeln!(out, "maxpool {}", p.window());
            }
            NetLayer::Relu(r) => {
                let _ = writeln!(
                    out,
                    "relu {}",
                    if r.max_value().is_some() {
                        "clamped"
                    } else {
                        "plain"
                    }
                );
            }
            NetLayer::Flatten(_) => out.push_str("flatten\n"),
            NetLayer::Residual(r) => {
                let _ = writeln!(out, "residual {}", r.inner().layers().len());
                write_layers(r.inner().layers(), out);
            }
        }
    }
}

fn write_weights(weights: &[f32], out: &mut String) {
    let mut first = true;
    for w in weights {
        if !first {
            out.push(' ');
        }
        // `{:?}` on f32 prints a shortest round-trippable representation.
        let _ = write!(out, "{w:?}");
        first = false;
    }
    out.push('\n');
}

fn accum_name(a: AccumMode) -> &'static str {
    match a {
        AccumMode::Linear => "linear",
        AccumMode::OrApprox => "or_approx",
        AccumMode::OrExact => "or_exact",
    }
}

fn parse_accum(s: &str) -> Result<AccumMode, NnError> {
    match s {
        "linear" => Ok(AccumMode::Linear),
        "or_approx" => Ok(AccumMode::OrApprox),
        "or_exact" => Ok(AccumMode::OrExact),
        other => Err(NnError::InvalidConfig(format!(
            "unknown accumulation mode '{other}'"
        ))),
    }
}

/// Parses a network from the text format.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] on malformed input (bad magic,
/// unknown layer kinds, wrong weight counts).
pub fn from_text(text: &str) -> Result<Network, NnError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(MAGIC) {
        return Err(NnError::InvalidConfig(format!("missing '{MAGIC}' header")));
    }
    let mut lines = lines.peekable();
    let layers = parse_layers(&mut lines, None)?;
    match lines.next().map(str::trim) {
        Some("end") | None => {}
        Some(other) => {
            return Err(NnError::InvalidConfig(format!(
                "trailing content '{other}'"
            )))
        }
    }
    let mut net = Network::new();
    for l in layers {
        net.push(l);
    }
    Ok(net)
}

fn parse_layers<'a, I: Iterator<Item = &'a str>>(
    lines: &mut std::iter::Peekable<I>,
    limit: Option<usize>,
) -> Result<Vec<NetLayer>, NnError> {
    let mut layers = Vec::new();
    while limit.is_none_or(|n| layers.len() < n) {
        let Some(&line) = lines.peek() else { break };
        let line = line.trim();
        if line == "end" {
            break;
        }
        lines.next();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap_or("");
        let bad = |what: &str| NnError::InvalidConfig(format!("malformed {what} line: '{line}'"));
        match kind {
            "conv" => {
                let nums: Vec<usize> = parts
                    .by_ref()
                    .take(5)
                    .map(|p| p.parse().map_err(|_| bad("conv")))
                    .collect::<Result<_, _>>()?;
                if nums.len() != 5 {
                    return Err(bad("conv"));
                }
                let accum = parse_accum(parts.next().ok_or_else(|| bad("conv"))?)?;
                let mut c = Conv2d::new(nums[0], nums[1], nums[2], nums[3], nums[4], accum)?;
                read_weights(lines, c.weights_mut(), line)?;
                layers.push(NetLayer::Conv(c));
            }
            "dense" => {
                let nums: Vec<usize> = parts
                    .by_ref()
                    .take(2)
                    .map(|p| p.parse().map_err(|_| bad("dense")))
                    .collect::<Result<_, _>>()?;
                if nums.len() != 2 {
                    return Err(bad("dense"));
                }
                let accum = parse_accum(parts.next().ok_or_else(|| bad("dense"))?)?;
                let mut d = Dense::new(nums[0], nums[1], accum)?;
                read_weights(lines, d.weights_mut(), line)?;
                layers.push(NetLayer::Dense(d));
            }
            "avgpool" => {
                let w: usize = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| bad("avgpool"))?;
                layers.push(NetLayer::AvgPool(AvgPool2d::new(w)?));
            }
            "maxpool" => {
                let w: usize = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| bad("maxpool"))?;
                layers.push(NetLayer::MaxPool(MaxPool2d::new(w)?));
            }
            "relu" => {
                let r = match parts.next() {
                    Some("clamped") => Relu::clamped(),
                    Some("plain") | None => Relu::new(),
                    Some(_) => return Err(bad("relu")),
                };
                layers.push(NetLayer::Relu(r));
            }
            "flatten" => layers.push(NetLayer::Flatten(Default::default())),
            "residual" => {
                let n: usize = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| bad("residual"))?;
                let inner_layers = parse_layers(lines, Some(n))?;
                if inner_layers.len() != n {
                    return Err(NnError::InvalidConfig(format!(
                        "residual expected {n} inner layers, found {}",
                        inner_layers.len()
                    )));
                }
                let mut inner = Network::new();
                for l in inner_layers {
                    inner.push(l);
                }
                layers.push(NetLayer::Residual(Residual::new(inner)));
            }
            other => {
                return Err(NnError::InvalidConfig(format!(
                    "unknown layer kind '{other}'"
                )))
            }
        }
    }
    Ok(layers)
}

fn read_weights<'a, I: Iterator<Item = &'a str>>(
    lines: &mut std::iter::Peekable<I>,
    dst: &mut [f32],
    header: &str,
) -> Result<(), NnError> {
    let line = lines
        .next()
        .ok_or_else(|| NnError::InvalidConfig(format!("missing weight line after '{header}'")))?;
    let mut count = 0usize;
    for (slot, tok) in dst.iter_mut().zip(line.split_whitespace()) {
        *slot = tok
            .parse()
            .map_err(|_| NnError::InvalidConfig(format!("bad weight '{tok}' after '{header}'")))?;
        count += 1;
    }
    if count != dst.len() || line.split_whitespace().count() != dst.len() {
        return Err(NnError::InvalidConfig(format!(
            "expected {} weights after '{header}', found {}",
            dst.len(),
            line.split_whitespace().count()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn sample_net() -> Network {
        let mut net = Network::new();
        net.push_conv(Conv2d::new(1, 2, 3, 1, 1, AccumMode::OrApprox).unwrap());
        net.push_avg_pool(AvgPool2d::new(2).unwrap());
        net.push_relu(Relu::clamped());
        let mut inner = Network::new();
        inner.push_conv(Conv2d::new(2, 2, 3, 1, 1, AccumMode::OrExact).unwrap());
        inner.push_relu(Relu::new());
        net.push_residual(inner);
        net.push_max_pool(MaxPool2d::new(2).unwrap());
        net.push_flatten();
        net.push_dense(Dense::new(2 * 2 * 2, 3, AccumMode::Linear).unwrap());
        net
    }

    #[test]
    fn roundtrip_preserves_structure_and_weights() {
        let mut net = sample_net();
        let text = to_text(&net);
        let mut back = from_text(&text).unwrap();
        assert_eq!(back.param_count(), net.param_count());
        // Bit-identical forward results.
        let input =
            Tensor::from_vec(&[1, 8, 8], (0..64).map(|i| i as f32 / 64.0).collect()).unwrap();
        let a = net.forward(&input).unwrap();
        let b = back.forward(&input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_is_idempotent_text() {
        let net = sample_net();
        let t1 = to_text(&net);
        let t2 = to_text(&from_text(&t1).unwrap());
        assert_eq!(t1, t2);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(from_text("not a net\n").is_err());
    }

    #[test]
    fn rejects_wrong_weight_count() {
        let text = "acoustic-net v1\ndense 2 2 linear\n0.5 0.5 0.5\nend\n";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn rejects_unknown_layer() {
        let text = "acoustic-net v1\nwarp 9\nend\n";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn rejects_unknown_accum_mode() {
        let text = "acoustic-net v1\ndense 1 1 magic\n0.5\nend\n";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "acoustic-net v1\n# header comment\n\ndense 1 1 linear\n0.25\nend\n";
        let net = from_text(text).unwrap();
        assert_eq!(net.param_count(), 1);
    }

    #[test]
    fn residual_nesting_roundtrips() {
        let net = sample_net();
        let back = from_text(&to_text(&net)).unwrap();
        let has_residual = back
            .layers()
            .iter()
            .any(|l| matches!(l, NetLayer::Residual(_)));
        assert!(has_residual);
    }
}
