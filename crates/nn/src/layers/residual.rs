//! Residual (skip) connections.
//!
//! ACOUSTIC supports residual networks (§III-C: "residual connections are
//! all supported") — in hardware the skip path is a binary-domain addition
//! at the output counters, since every layer converts back to binary. Here
//! a [`Residual`] wraps an inner sub-network and adds its input to its
//! output, which is exactly that counter-domain addition.

use super::network::Network;
use crate::{NnError, Tensor};

/// A residual block: `y = inner(x) + x`.
///
/// The inner network must preserve the tensor shape (as ResNet basic
/// blocks do on their non-downsampling paths).
///
/// # Examples
///
/// ```
/// use acoustic_nn::layers::{AccumMode, Conv2d, Network, Relu, Residual};
/// use acoustic_nn::Tensor;
///
/// # fn main() -> Result<(), acoustic_nn::NnError> {
/// let mut inner = Network::new();
/// inner.push_conv(Conv2d::new(4, 4, 3, 1, 1, AccumMode::OrApprox)?);
/// inner.push_relu(Relu::clamped());
/// let mut block = Residual::new(inner);
/// let y = block.forward(&Tensor::zeros(&[4, 8, 8]))?;
/// assert_eq!(y.shape(), &[4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Residual {
    inner: Network,
    in_shape: Vec<usize>,
}

impl Residual {
    /// Wraps an inner sub-network.
    pub fn new(inner: Network) -> Self {
        Residual {
            inner,
            in_shape: Vec::new(),
        }
    }

    /// The wrapped sub-network.
    pub fn inner(&self) -> &Network {
        &self.inner
    }

    /// Mutable access to the wrapped sub-network.
    pub fn inner_mut(&mut self) -> &mut Network {
        &mut self.inner
    }

    /// Forward pass: `inner(x) + x`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the inner network changes the
    /// shape; propagates inner-layer errors.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let mut out = self.inner.forward(input)?;
        if out.shape() != input.shape() {
            return Err(NnError::ShapeMismatch {
                expected: input.shape().to_vec(),
                actual: out.shape().to_vec(),
            });
        }
        for (o, &x) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o += x;
        }
        self.in_shape = input.shape().to_vec();
        Ok(out)
    }

    /// Backward pass: the gradient flows through both the inner path and
    /// the identity skip.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyData`] without a cached forward pass;
    /// propagates inner-layer errors.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.in_shape.is_empty() {
            return Err(NnError::EmptyData);
        }
        let mut gin = self.inner.backward(grad_out)?;
        for (g, &go) in gin.as_mut_slice().iter_mut().zip(grad_out.as_slice()) {
            *g += go;
        }
        Ok(gin)
    }

    /// Applies pending updates on the inner network.
    pub fn apply_update(&mut self, lr: f32, momentum: f32) {
        self.inner.apply_update(lr, momentum);
    }

    /// Trainable parameters of the inner network.
    pub fn param_count(&self) -> usize {
        self.inner.param_count()
    }

    /// Sets the accumulation mode of all inner MAC layers.
    pub fn set_accum_mode(&mut self, accum: super::AccumMode) {
        self.inner.set_accum_mode(accum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{AccumMode, Conv2d, Relu};

    fn block() -> Residual {
        let mut inner = Network::new();
        inner.push_conv(Conv2d::new(2, 2, 3, 1, 1, AccumMode::Linear).unwrap());
        inner.push_relu(Relu::new());
        Residual::new(inner)
    }

    #[test]
    fn zero_inner_weights_give_identity() {
        let mut b = block();
        if let crate::layers::NetLayer::Conv(c) = &mut b.inner_mut().layers_mut()[0] {
            c.weights_mut().iter_mut().for_each(|w| *w = 0.0);
        }
        let x = Tensor::from_vec(&[2, 4, 4], (0..32).map(|i| i as f32 / 32.0).collect()).unwrap();
        let y = b.forward(&x).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn shape_changing_inner_rejected() {
        let mut inner = Network::new();
        inner.push_conv(Conv2d::new(2, 4, 3, 1, 1, AccumMode::Linear).unwrap());
        let mut b = Residual::new(inner);
        assert!(b.forward(&Tensor::zeros(&[2, 4, 4])).is_err());
    }

    #[test]
    fn gradient_includes_skip_path() {
        let mut b = block();
        let x = Tensor::from_vec(&[2, 4, 4], vec![0.3; 32]).unwrap();
        let out = b.forward(&x).unwrap();
        let grad_out = out.map(|_| 1.0);
        let gin = b.backward(&grad_out).unwrap();
        // Even with a dead inner path (ReLU off), the skip passes gradient 1.
        for &g in gin.as_slice() {
            assert!(g >= 1.0 - 1e-6, "skip gradient lost: {g}");
        }
    }

    #[test]
    fn numeric_gradcheck_through_block() {
        let mut b = block();
        let x =
            Tensor::from_vec(&[2, 4, 4], (0..32).map(|i| (i % 7) as f32 / 7.0).collect()).unwrap();
        let out = b.forward(&x).unwrap();
        let grad_out = out.map(|v| 2.0 * v);
        let gin = b.backward(&grad_out).unwrap();
        let loss = |b: &mut Residual, inp: &Tensor| -> f32 {
            b.forward(inp)
                .unwrap()
                .as_slice()
                .iter()
                .map(|v| v * v)
                .sum()
        };
        let h = 1e-3;
        for i in [0usize, 9, 20, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += h;
            let lp = loss(&mut b, &xp);
            xp.as_mut_slice()[i] -= 2.0 * h;
            let lm = loss(&mut b, &xp);
            let numeric = (lp - lm) / (2.0 * h);
            assert!(
                (gin.as_slice()[i] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "input {i}: analytic {} vs numeric {numeric}",
                gin.as_slice()[i]
            );
        }
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut b = block();
        assert!(b.backward(&Tensor::zeros(&[2, 4, 4])).is_err());
    }

    #[test]
    fn param_count_counts_inner() {
        assert_eq!(block().param_count(), 2 * 2 * 9);
    }
}
