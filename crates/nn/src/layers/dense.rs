//! Fully-connected layer with selectable accumulation semantics.

use super::AccumMode;
use crate::orsum;
use crate::{NnError, Tensor};

/// A fully-connected (dense) layer over flattened inputs, no bias.
///
/// Weights are stored `[out][in]` row-major.
///
/// # Examples
///
/// ```
/// use acoustic_nn::layers::{Dense, AccumMode};
/// use acoustic_nn::Tensor;
///
/// # fn main() -> Result<(), acoustic_nn::NnError> {
/// let mut fc = Dense::new(16, 10, AccumMode::Linear)?;
/// let out = fc.forward(&Tensor::zeros(&[16]))?;
/// assert_eq!(out.shape(), &[10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_n: usize,
    out_n: usize,
    accum: AccumMode,
    weight: Vec<f32>,
    grad_w: Vec<f32>,
    vel_w: Vec<f32>,
    input: Vec<f32>,
    pos_sum: Vec<f64>,
    neg_sum: Vec<f64>,
}

impl Dense {
    /// Creates a dense layer with deterministic small-weight init.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if either dimension is zero.
    pub fn new(in_n: usize, out_n: usize, accum: AccumMode) -> Result<Self, NnError> {
        if in_n == 0 || out_n == 0 {
            return Err(NnError::InvalidConfig(
                "dense dimensions must be positive".into(),
            ));
        }
        let mut weight = Tensor::zeros(&[out_n * in_n]);
        let scale = (2.0 / in_n as f32).sqrt();
        weight.fill_uniform((in_n * 131 + out_n * 17) as u64, scale);
        let w = weight.into_vec();
        let n = w.len();
        Ok(Dense {
            in_n,
            out_n,
            accum,
            weight: w,
            grad_w: vec![0.0; n],
            vel_w: vec![0.0; n],
            input: Vec::new(),
            pos_sum: Vec::new(),
            neg_sum: Vec::new(),
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_n
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_n
    }

    /// The accumulation mode.
    pub fn accum_mode(&self) -> AccumMode {
        self.accum
    }

    /// Changes the accumulation mode.
    pub fn set_accum_mode(&mut self, accum: AccumMode) {
        self.accum = accum;
    }

    /// Flat weights, `[out][in]` row-major.
    pub fn weights(&self) -> &[f32] {
        &self.weight
    }

    /// Mutable flat weights.
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weight
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len()
    }

    /// Forward pass over a flattened input (any shape with the right element
    /// count is accepted).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on a wrong-sized input.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.len() != self.in_n {
            return Err(NnError::ShapeMismatch {
                expected: vec![self.in_n],
                actual: input.shape().to_vec(),
            });
        }
        let x = input.as_slice();
        let mut out = vec![0.0f32; self.out_n];
        match self.accum {
            AccumMode::Linear => {
                for (o, slot) in out.iter_mut().enumerate() {
                    let row = &self.weight[o * self.in_n..(o + 1) * self.in_n];
                    *slot = row.iter().zip(x).map(|(&w, &a)| w * a).sum();
                }
                self.pos_sum.clear();
                self.neg_sum.clear();
            }
            AccumMode::OrApprox => {
                let mut pos = vec![0.0f64; self.out_n];
                let mut neg = vec![0.0f64; self.out_n];
                for o in 0..self.out_n {
                    let row = &self.weight[o * self.in_n..(o + 1) * self.in_n];
                    for (&w, &a) in row.iter().zip(x) {
                        if w > 0.0 {
                            pos[o] += (w * a) as f64;
                        } else if w < 0.0 {
                            neg[o] += (-w * a) as f64;
                        }
                    }
                    out[o] = (orsum::or_approx(pos[o]) - orsum::or_approx(neg[o])) as f32;
                }
                self.pos_sum = pos;
                self.neg_sum = neg;
            }
            AccumMode::OrExact => {
                let mut pos = vec![1.0f64; self.out_n];
                let mut neg = vec![1.0f64; self.out_n];
                for o in 0..self.out_n {
                    let row = &self.weight[o * self.in_n..(o + 1) * self.in_n];
                    for (&w, &a) in row.iter().zip(x) {
                        let p = (w.abs() * a) as f64;
                        if w > 0.0 {
                            pos[o] *= 1.0 - p.clamp(0.0, 1.0);
                        } else if w < 0.0 {
                            neg[o] *= 1.0 - p.clamp(0.0, 1.0);
                        }
                    }
                    out[o] = ((1.0 - pos[o]) - (1.0 - neg[o])) as f32;
                }
                self.pos_sum = pos;
                self.neg_sum = neg;
            }
        }
        self.input = x.to_vec();
        Tensor::from_vec(&[self.out_n], out)
    }

    /// Backward pass: accumulates weight gradients and returns the input
    /// gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyData`] if no forward pass was cached, or
    /// [`NnError::ShapeMismatch`] on a wrong-sized output gradient.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.input.is_empty() {
            return Err(NnError::EmptyData);
        }
        if grad_out.len() != self.out_n {
            return Err(NnError::ShapeMismatch {
                expected: vec![self.out_n],
                actual: grad_out.shape().to_vec(),
            });
        }
        let go = grad_out.as_slice();
        let mut gin = vec![0.0f32; self.in_n];
        // OrApprox derivatives depend only on the output: precompute.
        let (dpos, dneg): (Vec<f64>, Vec<f64>) = if self.accum == AccumMode::OrApprox {
            (
                self.pos_sum
                    .iter()
                    .map(|&s| orsum::or_approx_derivative(s))
                    .collect(),
                self.neg_sum
                    .iter()
                    .map(|&s| orsum::or_approx_derivative(s))
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        for o in 0..self.out_n {
            let row = &self.weight[o * self.in_n..(o + 1) * self.in_n];
            for (i, (&w, &a)) in row.iter().zip(&self.input).enumerate() {
                let (gw, ga) = match self.accum {
                    AccumMode::Linear => (go[o] * a, go[o] * w),
                    AccumMode::OrApprox => {
                        let d = if w >= 0.0 { dpos[o] } else { dneg[o] };
                        let t = (go[o] as f64 * d) as f32;
                        (t * a, t * w)
                    }
                    AccumMode::OrExact => {
                        let p = ((w.abs() * a) as f64).clamp(0.0, 1.0);
                        if p >= 1.0 {
                            (0.0, 0.0)
                        } else {
                            let prod = if w >= 0.0 {
                                self.pos_sum[o]
                            } else {
                                self.neg_sum[o]
                            };
                            let others = prod / (1.0 - p);
                            let t = (go[o] as f64 * others) as f32;
                            (t * a, t * w)
                        }
                    }
                };
                self.grad_w[o * self.in_n + i] += gw;
                gin[i] += ga;
            }
        }
        Tensor::from_vec(&[self.in_n], gin)
    }

    /// SGD-with-momentum update with `[−1, 1]` weight clipping.
    pub fn apply_update(&mut self, lr: f32, momentum: f32) {
        for i in 0..self.weight.len() {
            self.vel_w[i] = momentum * self.vel_w[i] - lr * self.grad_w[i];
            self.weight[i] = (self.weight[i] + self.vel_w[i]).clamp(-1.0, 1.0);
            self.grad_w[i] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_is_matvec() {
        let mut fc = Dense::new(3, 2, AccumMode::Linear).unwrap();
        fc.weights_mut()
            .copy_from_slice(&[1.0, 0.0, -1.0, 0.5, 0.5, 0.5]);
        let out = fc
            .forward(&Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap())
            .unwrap();
        assert_eq!(out.as_slice(), &[-2.0, 3.0]);
    }

    #[test]
    fn or_exact_matches_formula() {
        let mut fc = Dense::new(2, 1, AccumMode::OrExact).unwrap();
        fc.weights_mut().copy_from_slice(&[0.5, 0.5]);
        let out = fc
            .forward(&Tensor::from_vec(&[2], vec![0.5, 0.5]).unwrap())
            .unwrap();
        // 1 - (1-0.25)^2 = 0.4375
        assert!((out.as_slice()[0] - 0.4375).abs() < 1e-6);
    }

    #[test]
    fn gradcheck_all_modes() {
        for mode in [AccumMode::Linear, AccumMode::OrApprox, AccumMode::OrExact] {
            let mut fc = Dense::new(4, 3, mode).unwrap();
            let input = Tensor::from_vec(&[4], vec![0.2, 0.5, 0.1, 0.8]).unwrap();
            let out = fc.forward(&input).unwrap();
            let grad_out = out.map(|v| 2.0 * v);
            let gin = fc.backward(&grad_out).unwrap();

            let loss = |f: &mut Dense, inp: &Tensor| -> f32 {
                f.forward(inp)
                    .unwrap()
                    .as_slice()
                    .iter()
                    .map(|v| v * v)
                    .sum()
            };
            let h = 1e-3;
            for wi in [0usize, 5, 11] {
                let saved = fc.weights()[wi];
                let analytic = fc.grad_w[wi];
                fc.weights_mut()[wi] = saved + h;
                let lp = loss(&mut fc, &input);
                fc.weights_mut()[wi] = saved - h;
                let lm = loss(&mut fc, &input);
                fc.weights_mut()[wi] = saved;
                let numeric = (lp - lm) / (2.0 * h);
                assert!(
                    (analytic - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                    "{mode:?} weight {wi}: analytic {analytic} vs {numeric}"
                );
            }
            let mut inp = input.clone();
            for ii in 0..4 {
                let saved = inp.as_slice()[ii];
                inp.as_mut_slice()[ii] = saved + h;
                let lp = loss(&mut fc, &inp);
                inp.as_mut_slice()[ii] = saved - h;
                let lm = loss(&mut fc, &inp);
                inp.as_mut_slice()[ii] = saved;
                let numeric = (lp - lm) / (2.0 * h);
                assert!(
                    (gin.as_slice()[ii] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                    "{mode:?} input {ii}: analytic {} vs {numeric}",
                    gin.as_slice()[ii]
                );
            }
        }
    }

    #[test]
    fn wrong_input_size_errors() {
        let mut fc = Dense::new(4, 2, AccumMode::Linear).unwrap();
        assert!(fc.forward(&Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut fc = Dense::new(4, 2, AccumMode::Linear).unwrap();
        assert!(fc.backward(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn flattened_3d_input_accepted() {
        let mut fc = Dense::new(12, 2, AccumMode::Linear).unwrap();
        assert!(fc.forward(&Tensor::zeros(&[3, 2, 2])).is_ok());
    }

    #[test]
    fn update_applies_momentum() {
        let mut fc = Dense::new(1, 1, AccumMode::Linear).unwrap();
        fc.weights_mut()[0] = 0.0;
        fc.grad_w[0] = 1.0;
        fc.apply_update(0.1, 0.9);
        assert!((fc.weights()[0] + 0.1).abs() < 1e-6);
        // Momentum carries with zero new gradient.
        fc.apply_update(0.1, 0.9);
        assert!((fc.weights()[0] + 0.19).abs() < 1e-6);
    }
}
