//! CNN layers with pluggable accumulation semantics.
//!
//! Every multiply-accumulate layer ([`Conv2d`], [`Dense`]) supports three
//! [`AccumMode`]s:
//!
//! * [`AccumMode::Linear`] — conventional summation (the float / 8-bit
//!   fixed-point baseline),
//! * [`AccumMode::OrApprox`] — ACOUSTIC training mode, Eq. (1):
//!   positive and negative product sums are passed through `1 − e^{−s}`
//!   before subtraction,
//! * [`AccumMode::OrExact`] — the true OR expectation `1 − Π(1 − p)`;
//!   ~an order of magnitude slower to train, used to validate the
//!   approximation and reproduce the §II-D speedup claim.
//!
//! Layers are enum-dispatched (see [`NetLayer`]) so downstream crates — the
//! SC functional simulator in particular — can pattern-match a trained
//! network and read its weights without downcasting.

mod activation;
mod conv;
mod dense;
mod network;
mod pool;
mod residual;

pub use activation::{Flatten, Relu};
pub use conv::Conv2d;
pub use dense::Dense;
pub use network::{NetLayer, Network};
pub use pool::{AvgPool2d, MaxPool2d};
pub use residual::Residual;

/// How a multiply-accumulate layer combines its products.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccumMode {
    /// Conventional linear summation.
    #[default]
    Linear,
    /// ACOUSTIC Eq. (1): `1 − e^{−Σp}` applied to the positive and negative
    /// product sums separately, then subtracted.
    OrApprox,
    /// Exact OR expectation `1 − Π(1 − p)` per sign, then subtracted.
    OrExact,
}

impl AccumMode {
    /// Applies the post-sum transform of this mode to a (non-negative)
    /// product sum. [`AccumMode::OrExact`] has no sum-level form and is
    /// handled product-by-product inside the layers; calling this for it
    /// falls back to the approximation.
    pub fn transfer(&self, sum: f64) -> f64 {
        match self {
            AccumMode::Linear => sum,
            AccumMode::OrApprox | AccumMode::OrExact => crate::orsum::or_approx(sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_linear_is_identity() {
        assert_eq!(AccumMode::Linear.transfer(2.5), 2.5);
    }

    #[test]
    fn transfer_or_is_saturating() {
        let m = AccumMode::OrApprox;
        assert!(m.transfer(0.0).abs() < 1e-12);
        assert!(m.transfer(10.0) < 1.0);
        assert!(m.transfer(0.5) < 0.5);
    }
}
