//! Average and max pooling.
//!
//! ACOUSTIC prefers average pooling (§II-C): in SC it is a MUX / stream
//! concatenation, whereas max pooling needs an FSM and costs ~2× more
//! area/power. Both are provided so the "<0.3 % accuracy difference" claim
//! can be measured.

use crate::{NnError, Tensor};

/// Average pooling with a square window and stride equal to the window.
///
/// # Examples
///
/// ```
/// use acoustic_nn::layers::AvgPool2d;
/// use acoustic_nn::Tensor;
///
/// # fn main() -> Result<(), acoustic_nn::NnError> {
/// let mut pool = AvgPool2d::new(2)?;
/// let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let out = pool.forward(&input)?;
/// assert_eq!(out.as_slice(), &[2.5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    in_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with `window × window` windows.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `window < 2`.
    pub fn new(window: usize) -> Result<Self, NnError> {
        if window < 2 {
            return Err(NnError::InvalidConfig(
                "pooling window must be at least 2".into(),
            ));
        }
        Ok(AvgPool2d {
            window,
            in_shape: Vec::new(),
        })
    }

    /// Window side length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Forward pass. Input height/width must be divisible by the window.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for non-3-D or non-divisible
    /// inputs.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let s = input.shape();
        if s.len() != 3 || !s[1].is_multiple_of(self.window) || !s[2].is_multiple_of(self.window) {
            return Err(NnError::ShapeMismatch {
                expected: vec![0, self.window, self.window],
                actual: s.to_vec(),
            });
        }
        let (c, h, w) = (s[0], s[1], s[2]);
        let (oh, ow) = (h / self.window, w / self.window);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        let norm = (self.window * self.window) as f32;
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut sum = 0.0;
                    for ky in 0..self.window {
                        for kx in 0..self.window {
                            sum += input.at3(ch, oy * self.window + ky, ox * self.window + kx);
                        }
                    }
                    out.set3(ch, oy, ox, sum / norm);
                }
            }
        }
        self.in_shape = s.to_vec();
        Ok(out)
    }

    /// Backward pass: spreads each output gradient uniformly over its
    /// window.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyData`] without a cached forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.in_shape.is_empty() {
            return Err(NnError::EmptyData);
        }
        let (c, h, w) = (self.in_shape[0], self.in_shape[1], self.in_shape[2]);
        let norm = (self.window * self.window) as f32;
        let mut gin = Tensor::zeros(&self.in_shape);
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let g = grad_out.at3(ch, y / self.window, x / self.window) / norm;
                    gin.set3(ch, y, x, g);
                }
            }
        }
        Ok(gin)
    }
}

/// Max pooling with a square window and stride equal to the window.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    in_shape: Vec<usize>,
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with `window × window` windows.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `window < 2`.
    pub fn new(window: usize) -> Result<Self, NnError> {
        if window < 2 {
            return Err(NnError::InvalidConfig(
                "pooling window must be at least 2".into(),
            ));
        }
        Ok(MaxPool2d {
            window,
            in_shape: Vec::new(),
            argmax: Vec::new(),
        })
    }

    /// Window side length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Forward pass; remembers argmax positions for routing gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for non-3-D or non-divisible
    /// inputs.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let s = input.shape();
        if s.len() != 3 || !s[1].is_multiple_of(self.window) || !s[2].is_multiple_of(self.window) {
            return Err(NnError::ShapeMismatch {
                expected: vec![0, self.window, self.window],
                actual: s.to_vec(),
            });
        }
        let (c, h, w) = (s[0], s[1], s[2]);
        let (oh, ow) = (h / self.window, w / self.window);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        let mut argmax = vec![0usize; c * oh * ow];
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..self.window {
                        for kx in 0..self.window {
                            let (y, x) = (oy * self.window + ky, ox * self.window + kx);
                            let v = input.at3(ch, y, x);
                            if v > best {
                                best = v;
                                best_idx = (ch * h + y) * w + x;
                            }
                        }
                    }
                    out.set3(ch, oy, ox, best);
                    argmax[(ch * oh + oy) * ow + ox] = best_idx;
                }
            }
        }
        self.in_shape = s.to_vec();
        self.argmax = argmax;
        Ok(out)
    }

    /// Backward pass: routes each output gradient to its argmax input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyData`] without a cached forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.in_shape.is_empty() {
            return Err(NnError::EmptyData);
        }
        let mut gin = Tensor::zeros(&self.in_shape);
        for (i, &src) in self.argmax.iter().enumerate() {
            gin.as_mut_slice()[src] += grad_out.as_slice()[i];
        }
        Ok(gin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_2x2() {
        let mut p = AvgPool2d::new(2).unwrap();
        let input =
            Tensor::from_vec(&[1, 4, 2], vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0]).unwrap();
        let out = p.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 2, 1]);
        assert_eq!(out.as_slice(), &[2.5, 10.0]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let mut p = AvgPool2d::new(2).unwrap();
        let input = Tensor::zeros(&[1, 2, 2]);
        p.forward(&input).unwrap();
        let gin = p
            .backward(&Tensor::from_vec(&[1, 1, 1], vec![4.0]).unwrap())
            .unwrap();
        assert_eq!(gin.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn max_pool_takes_maximum() {
        let mut p = MaxPool2d::new(2).unwrap();
        let input = Tensor::from_vec(&[1, 2, 2], vec![0.1, 0.9, 0.5, 0.3]).unwrap();
        let out = p.forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[0.9]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(2).unwrap();
        let input = Tensor::from_vec(&[1, 2, 2], vec![0.1, 0.9, 0.5, 0.3]).unwrap();
        p.forward(&input).unwrap();
        let gin = p
            .backward(&Tensor::from_vec(&[1, 1, 1], vec![2.0]).unwrap())
            .unwrap();
        assert_eq!(gin.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn non_divisible_input_errors() {
        let mut p = AvgPool2d::new(2).unwrap();
        assert!(p.forward(&Tensor::zeros(&[1, 3, 4])).is_err());
        let mut m = MaxPool2d::new(3).unwrap();
        assert!(m.forward(&Tensor::zeros(&[1, 4, 4])).is_err());
    }

    #[test]
    fn window_of_one_rejected() {
        assert!(AvgPool2d::new(1).is_err());
        assert!(MaxPool2d::new(0).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut p = AvgPool2d::new(2).unwrap();
        assert!(p.backward(&Tensor::zeros(&[1, 1, 1])).is_err());
        let mut m = MaxPool2d::new(2).unwrap();
        assert!(m.backward(&Tensor::zeros(&[1, 1, 1])).is_err());
    }

    #[test]
    fn three_by_three_window() {
        let mut p = AvgPool2d::new(3).unwrap();
        let input = Tensor::from_vec(&[1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let out = p.forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[5.0]);
    }
}
