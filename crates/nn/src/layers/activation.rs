//! ReLU and flattening.

use crate::{NnError, Tensor};

/// Rectified linear unit, optionally clamped from above.
///
/// ACOUSTIC activations live in `[0, 1]` (they become SNG thresholds), so
/// networks destined for the SC path use `Relu::clamped()`, which computes
/// `min(max(x, 0), 1)`.
///
/// # Examples
///
/// ```
/// use acoustic_nn::layers::Relu;
/// use acoustic_nn::Tensor;
///
/// # fn main() -> Result<(), acoustic_nn::NnError> {
/// let mut relu = Relu::clamped();
/// let out = relu.forward(&Tensor::from_vec(&[3], vec![-1.0, 0.5, 2.0])?)?;
/// assert_eq!(out.as_slice(), &[0.0, 0.5, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    max: Option<f32>,
    input: Vec<f32>,
    in_shape: Vec<usize>,
}

impl Relu {
    /// Plain `max(x, 0)`.
    pub fn new() -> Self {
        Relu::default()
    }

    /// `min(max(x, 0), 1)` — the SC-compatible activation.
    pub fn clamped() -> Self {
        Relu {
            max: Some(1.0),
            ..Relu::default()
        }
    }

    /// Upper clamp, if any.
    pub fn max_value(&self) -> Option<f32> {
        self.max
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` kept for uniformity with other layers.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.input = input.as_slice().to_vec();
        self.in_shape = input.shape().to_vec();
        let hi = self.max.unwrap_or(f32::INFINITY);
        Ok(input.map(|v| v.clamp(0.0, hi)))
    }

    /// Backward pass: passes gradient where the input was strictly inside
    /// `(0, max)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyData`] without a cached forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.in_shape.is_empty() {
            return Err(NnError::EmptyData);
        }
        let hi = self.max.unwrap_or(f32::INFINITY);
        let data: Vec<f32> = grad_out
            .as_slice()
            .iter()
            .zip(&self.input)
            .map(|(&g, &x)| if x > 0.0 && x < hi { g } else { 0.0 })
            .collect();
        Tensor::from_vec(&self.in_shape, data)
    }
}

/// Flattens a 3-D feature map to a 1-D vector (and un-flattens gradients).
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` kept for uniformity with other layers.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.in_shape = input.shape().to_vec();
        Ok(input.to_flat())
    }

    /// Backward pass: reshapes the gradient to the cached input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyData`] without a cached forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.in_shape.is_empty() {
            return Err(NnError::EmptyData);
        }
        let mut g = grad_out.clone();
        g.reshape(&self.in_shape)?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_relu_passes_positive() {
        let mut r = Relu::new();
        let out = r
            .forward(&Tensor::from_vec(&[3], vec![-2.0, 0.0, 5.0]).unwrap())
            .unwrap();
        assert_eq!(out.as_slice(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn clamped_relu_caps_at_one() {
        let mut r = Relu::clamped();
        let out = r
            .forward(&Tensor::from_vec(&[2], vec![0.5, 3.0]).unwrap())
            .unwrap();
        assert_eq!(out.as_slice(), &[0.5, 1.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut r = Relu::clamped();
        r.forward(&Tensor::from_vec(&[3], vec![-1.0, 0.5, 2.0]).unwrap())
            .unwrap();
        let g = r
            .backward(&Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]).unwrap())
            .unwrap();
        // Below 0 and above the clamp: zero gradient.
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let input = Tensor::zeros(&[2, 3, 4]);
        let out = f.forward(&input).unwrap();
        assert_eq!(out.shape(), &[24]);
        let g = f.backward(&Tensor::zeros(&[24])).unwrap();
        assert_eq!(g.shape(), &[2, 3, 4]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut r = Relu::new();
        assert!(r.backward(&Tensor::zeros(&[1])).is_err());
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[1])).is_err());
    }
}
