//! 2-D convolution with selectable accumulation semantics.

use super::AccumMode;
use crate::orsum;
use crate::{NnError, Tensor};

/// A 2-D convolution layer over `[C, H, W]` tensors (no bias — ACOUSTIC's
/// MAC fabric has no bias path; batch-norm-style offsets would live in the
/// counter and are not modelled by the paper).
///
/// Weights are stored `[out_c][in_c · k · k]`, matching the im2col patch
/// layout.
///
/// # Examples
///
/// ```
/// use acoustic_nn::layers::{Conv2d, AccumMode};
/// use acoustic_nn::Tensor;
///
/// # fn main() -> Result<(), acoustic_nn::NnError> {
/// let mut conv = Conv2d::new(1, 4, 3, 1, 1, AccumMode::Linear)?;
/// let input = Tensor::zeros(&[1, 8, 8]);
/// let out = conv.forward(&input)?;
/// assert_eq!(out.shape(), &[4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    accum: AccumMode,
    weight: Vec<f32>,
    grad_w: Vec<f32>,
    vel_w: Vec<f32>,
    // forward caches
    cols: Vec<f32>,
    in_shape: Vec<usize>,
    out_hw: (usize, usize),
    pos_sum: Vec<f64>,
    neg_sum: Vec<f64>,
}

impl Conv2d {
    /// Creates a convolution layer with deterministic small-weight init.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if any dimension is zero or the
    /// padding is at least the kernel size.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        accum: AccumMode,
    ) -> Result<Self, NnError> {
        if in_c == 0 || out_c == 0 || k == 0 || stride == 0 {
            return Err(NnError::InvalidConfig(
                "conv dimensions and stride must be positive".into(),
            ));
        }
        if pad >= k {
            return Err(NnError::InvalidConfig(format!(
                "padding {pad} must be smaller than kernel {k}"
            )));
        }
        let fan_in = in_c * k * k;
        let mut weight = Tensor::zeros(&[out_c * fan_in]);
        // He-style scale adapted to the [0,1] activation regime.
        let scale = (2.0 / fan_in as f32).sqrt();
        weight.fill_uniform((in_c * 31 + out_c * 7 + k) as u64, scale);
        let w = weight.into_vec();
        let n = w.len();
        Ok(Conv2d {
            in_c,
            out_c,
            k,
            stride,
            pad,
            accum,
            weight: w,
            grad_w: vec![0.0; n],
            vel_w: vec![0.0; n],
            cols: Vec::new(),
            in_shape: Vec::new(),
            out_hw: (0, 0),
            pos_sum: Vec::new(),
            neg_sum: Vec::new(),
        })
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Output channel count (number of kernels).
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on each side.
    pub fn padding(&self) -> usize {
        self.pad
    }

    /// The accumulation mode.
    pub fn accum_mode(&self) -> AccumMode {
        self.accum
    }

    /// Changes the accumulation mode (e.g. evaluate a linearly-trained net
    /// with OR accumulation).
    pub fn set_accum_mode(&mut self, accum: AccumMode) {
        self.accum = accum;
    }

    /// Flat weights, `[out_c][in_c·k·k]` row-major.
    pub fn weights(&self) -> &[f32] {
        &self.weight
    }

    /// Mutable flat weights (for quantization-in-place).
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weight
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len()
    }

    /// Output spatial size for an input of `h × w`.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }

    /// Forward pass. Caches activations for a subsequent
    /// [`Conv2d::backward`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the input is not
    /// `[in_c, h, w]`.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 3 || shape[0] != self.in_c {
            return Err(NnError::ShapeMismatch {
                expected: vec![self.in_c, 0, 0],
                actual: shape.to_vec(),
            });
        }
        let (h, w) = (shape[1], shape[2]);
        if h + 2 * self.pad < self.k || w + 2 * self.pad < self.k {
            return Err(NnError::InvalidConfig(format!(
                "input {h}x{w} smaller than kernel {}",
                self.k
            )));
        }
        let (oh, ow) = self.output_hw(h, w);
        let fan_in = self.in_c * self.k * self.k;
        let patches = oh * ow;

        // im2col: cols[r * patches + p]
        let mut cols = vec![0.0f32; fan_in * patches];
        for c in 0..self.in_c {
            for ky in 0..self.k {
                for kx in 0..self.k {
                    let r = (c * self.k + ky) * self.k + kx;
                    for oy in 0..oh {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            cols[r * patches + oy * ow + ox] =
                                input.at3(c, iy as usize, ix as usize);
                        }
                    }
                }
            }
        }

        let mut out = vec![0.0f32; self.out_c * patches];
        match self.accum {
            AccumMode::Linear => {
                for o in 0..self.out_c {
                    let wrow = &self.weight[o * fan_in..(o + 1) * fan_in];
                    for (r, &wv) in wrow.iter().enumerate() {
                        if wv == 0.0 {
                            continue;
                        }
                        let col = &cols[r * patches..(r + 1) * patches];
                        let dst = &mut out[o * patches..(o + 1) * patches];
                        for (d, &c) in dst.iter_mut().zip(col) {
                            *d += wv * c;
                        }
                    }
                }
                self.pos_sum.clear();
                self.neg_sum.clear();
            }
            AccumMode::OrApprox => {
                let mut pos = vec![0.0f64; self.out_c * patches];
                let mut neg = vec![0.0f64; self.out_c * patches];
                for o in 0..self.out_c {
                    let wrow = &self.weight[o * fan_in..(o + 1) * fan_in];
                    for (r, &wv) in wrow.iter().enumerate() {
                        if wv == 0.0 {
                            continue;
                        }
                        let col = &cols[r * patches..(r + 1) * patches];
                        if wv > 0.0 {
                            let dst = &mut pos[o * patches..(o + 1) * patches];
                            for (d, &c) in dst.iter_mut().zip(col) {
                                *d += (wv * c) as f64;
                            }
                        } else {
                            let dst = &mut neg[o * patches..(o + 1) * patches];
                            for (d, &c) in dst.iter_mut().zip(col) {
                                *d += (-wv * c) as f64;
                            }
                        }
                    }
                }
                for i in 0..out.len() {
                    out[i] = (orsum::or_approx(pos[i]) - orsum::or_approx(neg[i])) as f32;
                }
                self.pos_sum = pos;
                self.neg_sum = neg;
            }
            AccumMode::OrExact => {
                // 1 - Π(1 - p) per sign: track the running products.
                let mut pos = vec![1.0f64; self.out_c * patches];
                let mut neg = vec![1.0f64; self.out_c * patches];
                for o in 0..self.out_c {
                    let wrow = &self.weight[o * fan_in..(o + 1) * fan_in];
                    for (r, &wv) in wrow.iter().enumerate() {
                        if wv == 0.0 {
                            continue;
                        }
                        let col = &cols[r * patches..(r + 1) * patches];
                        let dst = if wv > 0.0 {
                            &mut pos[o * patches..(o + 1) * patches]
                        } else {
                            &mut neg[o * patches..(o + 1) * patches]
                        };
                        let mag = wv.abs() as f64;
                        for (d, &c) in dst.iter_mut().zip(col) {
                            *d *= 1.0 - (mag * c as f64).clamp(0.0, 1.0);
                        }
                    }
                }
                for i in 0..out.len() {
                    out[i] = ((1.0 - pos[i]) - (1.0 - neg[i])) as f32;
                }
                // Cache the final products; backward divides them back out.
                self.pos_sum = pos;
                self.neg_sum = neg;
            }
        }

        self.cols = cols;
        self.in_shape = shape.to_vec();
        self.out_hw = (oh, ow);
        Tensor::from_vec(&[self.out_c, oh, ow], out)
    }

    /// Backward pass: accumulates weight gradients and returns the input
    /// gradient. Must follow a [`Conv2d::forward`] call.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `grad_out` does not match the
    /// cached forward output shape, or [`NnError::EmptyData`] if no forward
    /// pass was cached.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.in_shape.is_empty() {
            return Err(NnError::EmptyData);
        }
        let (oh, ow) = self.out_hw;
        let patches = oh * ow;
        if grad_out.shape() != [self.out_c, oh, ow] {
            return Err(NnError::ShapeMismatch {
                expected: vec![self.out_c, oh, ow],
                actual: grad_out.shape().to_vec(),
            });
        }
        let fan_in = self.in_c * self.k * self.k;
        let go = grad_out.as_slice();

        // Effective per-product gradient g[o][p] per sign branch.
        // Linear: d out / d (w·a) = 1.
        // OrApprox: d out / d pos_sum = e^{-pos}; d out / d neg_sum = -e^{-neg}.
        // OrExact: d out / d p_r = Π_{i≠r}(1-p_i) = P / (1 - p_r) per sign.
        //
        // The OrApprox derivatives depend only on the output, so they are
        // precomputed once here instead of exp()-ing per lane × patch.
        let (dpos, dneg): (Vec<f32>, Vec<f32>) = if self.accum == AccumMode::OrApprox {
            (
                self.pos_sum
                    .iter()
                    .map(|&s| orsum::or_approx_derivative(s) as f32)
                    .collect(),
                self.neg_sum
                    .iter()
                    .map(|&s| orsum::or_approx_derivative(s) as f32)
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let mut gcols = vec![0.0f32; fan_in * patches];
        for o in 0..self.out_c {
            let wrow = &self.weight[o * fan_in..(o + 1) * fan_in];
            let gout = &go[o * patches..(o + 1) * patches];
            for (r, &wv) in wrow.iter().enumerate() {
                let col = &self.cols[r * patches..(r + 1) * patches];
                let mut gw = 0.0f32;
                let gcol = &mut gcols[r * patches..(r + 1) * patches];
                match self.accum {
                    AccumMode::Linear => {
                        for p in 0..patches {
                            gw += gout[p] * col[p];
                            gcol[p] += gout[p] * wv;
                        }
                    }
                    AccumMode::OrApprox => {
                        // Choose the branch by weight sign; w == 0 uses the
                        // positive branch so zero weights can move. For
                        // negative weights: d out/d neg_sum = -e^{-neg} and
                        // d neg_sum/d w = -a ⇒ d out/d w = +e^{-neg}·a, and
                        // d out/d a = -e^{-neg}·|w| = t·w.
                        let base = o * patches;
                        let d = if wv >= 0.0 { &dpos } else { &dneg };
                        for p in 0..patches {
                            let t = gout[p] * d[base + p];
                            gw += t * col[p];
                            gcol[p] += t * wv;
                        }
                    }
                    AccumMode::OrExact => {
                        // For a lane with product p = |w|·a on either sign
                        // branch, both gradients collapse to the same rule:
                        // ∂out/∂w = g·Π_{i≠r}(1−pᵢ)·a and
                        // ∂out/∂a = g·Π_{i≠r}(1−pᵢ)·w (the branch sign and
                        // the |w| chain factor cancel).
                        let base = o * patches;
                        let mag = wv.abs() as f64;
                        let prod = if wv >= 0.0 {
                            &self.pos_sum
                        } else {
                            &self.neg_sum
                        };
                        for p in 0..patches {
                            let pr = (mag * col[p] as f64).clamp(0.0, 1.0);
                            if pr >= 1.0 {
                                continue; // saturated product: zero gradient
                            }
                            let others = prod[base + p] / (1.0 - pr);
                            let t = gout[p] as f64 * others;
                            gw += (t * col[p] as f64) as f32;
                            gcol[p] += (t * wv as f64) as f32;
                        }
                    }
                }
                self.grad_w[o * fan_in + r] += gw;
            }
        }

        // col2im: scatter column gradients back to the input.
        let (h, w) = (self.in_shape[1], self.in_shape[2]);
        let mut gin = Tensor::zeros(&self.in_shape);
        for c in 0..self.in_c {
            for ky in 0..self.k {
                for kx in 0..self.k {
                    let r = (c * self.k + ky) * self.k + kx;
                    for oy in 0..oh {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let cur = gin.at3(c, iy as usize, ix as usize);
                            gin.set3(
                                c,
                                iy as usize,
                                ix as usize,
                                cur + gcols[r * patches + oy * ow + ox],
                            );
                        }
                    }
                }
            }
        }
        Ok(gin)
    }

    /// SGD-with-momentum update; weights are clipped to `[−1, 1]` afterwards
    /// (the split-unipolar representable range).
    pub fn apply_update(&mut self, lr: f32, momentum: f32) {
        for i in 0..self.weight.len() {
            self.vel_w[i] = momentum * self.vel_w[i] - lr * self.grad_w[i];
            self.weight[i] = (self.weight[i] + self.vel_w[i]).clamp(-1.0, 1.0);
            self.grad_w[i] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(shape: &[usize], f: impl Fn(usize) -> f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..n).map(f).collect()).unwrap()
    }

    #[test]
    fn output_shape_with_padding() {
        let conv = Conv2d::new(3, 8, 3, 1, 1, AccumMode::Linear).unwrap();
        assert_eq!(conv.output_hw(32, 32), (32, 32));
        let conv = Conv2d::new(3, 8, 3, 1, 0, AccumMode::Linear).unwrap();
        assert_eq!(conv.output_hw(32, 32), (30, 30));
        let conv = Conv2d::new(3, 8, 3, 2, 1, AccumMode::Linear).unwrap();
        assert_eq!(conv.output_hw(32, 32), (16, 16));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Conv2d::new(0, 8, 3, 1, 1, AccumMode::Linear).is_err());
        assert!(Conv2d::new(3, 8, 3, 0, 1, AccumMode::Linear).is_err());
        assert!(Conv2d::new(3, 8, 3, 1, 3, AccumMode::Linear).is_err());
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        // 1x1 kernel with weight 1.0 reproduces the input.
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, AccumMode::Linear).unwrap();
        conv.weights_mut()[0] = 1.0;
        let input = filled(&[1, 3, 3], |i| i as f32 / 10.0);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn known_3x3_convolution() {
        // All-ones 3x3 kernel over an all-ones 3x3 input, no padding: 9.
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, AccumMode::Linear).unwrap();
        conv.weights_mut().iter_mut().for_each(|w| *w = 1.0);
        let input = filled(&[1, 3, 3], |_| 1.0);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert!((out.as_slice()[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn padding_zeros_contribute_nothing() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, AccumMode::Linear).unwrap();
        conv.weights_mut().iter_mut().for_each(|w| *w = 1.0);
        let input = filled(&[1, 1, 1], |_| 1.0);
        let out = conv.forward(&input).unwrap();
        // Only the center tap sees the single input pixel.
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert!((out.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn or_approx_saturates_output() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, AccumMode::OrApprox).unwrap();
        conv.weights_mut().iter_mut().for_each(|w| *w = 1.0);
        let input = filled(&[1, 3, 3], |_| 1.0);
        let out = conv.forward(&input).unwrap();
        // Linear sum would be 9; OR-approx saturates below 1.
        assert!(out.as_slice()[0] < 1.0);
        assert!(out.as_slice()[0] > 0.99);
    }

    #[test]
    fn or_exact_matches_or_expected() {
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, AccumMode::OrExact).unwrap();
        conv.weights_mut().copy_from_slice(&[0.5, 0.5, -0.5, 0.0]);
        let input = filled(&[1, 2, 2], |_| 0.5);
        let out = conv.forward(&input).unwrap();
        // pos products: {0.25, 0.25} -> 1-(0.75)^2 = 0.4375
        // neg products: {0.25} -> 0.25
        assert!((out.as_slice()[0] - (0.4375 - 0.25)).abs() < 1e-6);
    }

    #[test]
    fn linear_backward_matches_numeric_gradient() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, AccumMode::Linear).unwrap();
        check_gradients(&mut conv, 1e-2);
    }

    #[test]
    fn or_approx_backward_matches_numeric_gradient() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, AccumMode::OrApprox).unwrap();
        check_gradients(&mut conv, 1e-2);
    }

    #[test]
    fn or_exact_backward_matches_numeric_gradient() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, AccumMode::OrExact).unwrap();
        check_gradients(&mut conv, 2e-2);
    }

    /// Compares analytic weight/input gradients against central differences
    /// on a scalar loss L = Σ out².
    ///
    /// Inputs are strictly positive: at a == 0 the OR-exact product clamp
    /// `(|w|·a).clamp(0, 1)` makes the loss one-sided, which central
    /// differences halve — not a gradient bug (real activations are
    /// post-ReLU ≥ 0 and the preceding ReLU zeroes that gradient anyway).
    fn check_gradients(conv: &mut Conv2d, tol: f32) {
        let input = filled(&[1, 4, 4], |i| ((i * 7) % 10 + 1) as f32 / 11.0);
        let out = conv.forward(&input).unwrap();
        let grad_out = out.map(|v| 2.0 * v); // dL/dout for L = Σ out²
        let gin = conv.backward(&grad_out).unwrap();

        let loss = |c: &mut Conv2d, inp: &Tensor| -> f32 {
            let o = c.forward(inp).unwrap();
            o.as_slice().iter().map(|v| v * v).sum()
        };

        // Weight gradients (grad_w was accumulated by backward).
        let h = 1e-3;
        for wi in [0usize, 3, 8, 12] {
            let saved = conv.weights()[wi];
            let analytic = conv.grad_w[wi];
            conv.weights_mut()[wi] = saved + h;
            let lp = loss(conv, &input);
            conv.weights_mut()[wi] = saved - h;
            let lm = loss(conv, &input);
            conv.weights_mut()[wi] = saved;
            let numeric = (lp - lm) / (2.0 * h);
            assert!(
                (analytic - numeric).abs() < tol * numeric.abs().max(1.0),
                "weight {wi}: analytic {analytic} vs numeric {numeric}"
            );
        }

        // Input gradients.
        let mut inp = input.clone();
        for ii in [0usize, 5, 10, 15] {
            let saved = inp.as_slice()[ii];
            inp.as_mut_slice()[ii] = saved + h;
            let lp = loss(conv, &inp);
            inp.as_mut_slice()[ii] = saved - h;
            let lm = loss(conv, &inp);
            inp.as_mut_slice()[ii] = saved;
            let numeric = (lp - lm) / (2.0 * h);
            let analytic = gin.as_slice()[ii];
            assert!(
                (analytic - numeric).abs() < tol * numeric.abs().max(1.0),
                "input {ii}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn update_clips_weights_to_unit_range() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, AccumMode::Linear).unwrap();
        conv.weights_mut()[0] = 0.99;
        conv.grad_w[0] = -10.0; // pushes weight up hard
        conv.apply_update(1.0, 0.0);
        assert_eq!(conv.weights()[0], 1.0);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, AccumMode::Linear).unwrap();
        assert!(conv.backward(&Tensor::zeros(&[1, 4, 4])).is_err());
    }

    #[test]
    fn wrong_input_channels_error() {
        let mut conv = Conv2d::new(3, 1, 3, 1, 1, AccumMode::Linear).unwrap();
        assert!(conv.forward(&Tensor::zeros(&[1, 8, 8])).is_err());
    }
}

#[cfg(test)]
mod reference_tests {
    use super::*;
    use crate::layers::Dense;
    use crate::Tensor;

    /// Naive direct convolution, the reference implementation.
    fn naive_conv(
        input: &Tensor,
        weights: &[f32],
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Vec<f32> {
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (w + 2 * pad - k) / stride + 1;
        let mut out = vec![0.0f32; out_c * oh * ow];
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ic in 0..in_c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                    continue;
                                }
                                let wv = weights[oc * in_c * k * k + (ic * k + ky) * k + kx];
                                acc += wv * input.at3(ic, iy as usize, ix as usize);
                            }
                        }
                    }
                    out[(oc * oh + oy) * ow + ox] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn im2col_matches_naive_reference_with_stride_and_padding() {
        for (stride, pad) in [(1usize, 0usize), (1, 1), (2, 1), (2, 0)] {
            let mut conv = Conv2d::new(3, 4, 3, stride, pad, AccumMode::Linear).unwrap();
            let input = Tensor::from_vec(
                &[3, 6, 6],
                (0..108).map(|i| ((i * 13) % 17) as f32 / 17.0).collect(),
            )
            .unwrap();
            let fast = conv.forward(&input).unwrap();
            let naive = naive_conv(&input, conv.weights(), 3, 4, 3, stride, pad);
            assert_eq!(fast.len(), naive.len(), "stride {stride} pad {pad}");
            for (a, b) in fast.as_slice().iter().zip(&naive) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "stride {stride} pad {pad}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn one_by_one_conv_equals_dense_per_pixel() {
        // A 1x1 convolution is a dense layer applied per spatial position.
        let mut conv = Conv2d::new(4, 3, 1, 1, 0, AccumMode::Linear).unwrap();
        let mut fc = Dense::new(4, 3, AccumMode::Linear).unwrap();
        fc.weights_mut().copy_from_slice(conv.weights());

        let input =
            Tensor::from_vec(&[4, 2, 2], (0..16).map(|i| (i as f32) / 16.0).collect()).unwrap();
        let conv_out = conv.forward(&input).unwrap();
        for y in 0..2 {
            for x in 0..2 {
                let pixel: Vec<f32> = (0..4).map(|c| input.at3(c, y, x)).collect();
                let fc_out = fc.forward(&Tensor::from_vec(&[4], pixel).unwrap()).unwrap();
                for (o, &expect) in fc_out.as_slice().iter().enumerate() {
                    assert!(
                        (conv_out.at3(o, y, x) - expect).abs() < 1e-5,
                        "pixel ({y},{x}) channel {o}"
                    );
                }
            }
        }
    }
}
