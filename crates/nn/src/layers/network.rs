//! Sequential network container with enum-dispatched layers.

use super::{AccumMode, AvgPool2d, Conv2d, Dense, Flatten, MaxPool2d, Relu, Residual};
use crate::{NnError, Tensor};

/// One layer of a [`Network`].
///
/// Enum dispatch (rather than trait objects) lets downstream crates — the SC
/// functional simulator in particular — pattern-match a trained network and
/// read its weights and configuration directly.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // variant payloads are documented on their types
pub enum NetLayer {
    Conv(Conv2d),
    Dense(Dense),
    AvgPool(AvgPool2d),
    MaxPool(MaxPool2d),
    Relu(Relu),
    Flatten(Flatten),
    Residual(Residual),
}

impl NetLayer {
    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped layer's error.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        match self {
            NetLayer::Conv(l) => l.forward(input),
            NetLayer::Dense(l) => l.forward(input),
            NetLayer::AvgPool(l) => l.forward(input),
            NetLayer::MaxPool(l) => l.forward(input),
            NetLayer::Relu(l) => l.forward(input),
            NetLayer::Flatten(l) => l.forward(input),
            NetLayer::Residual(l) => l.forward(input),
        }
    }

    /// Backward pass.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped layer's error.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        match self {
            NetLayer::Conv(l) => l.backward(grad_out),
            NetLayer::Dense(l) => l.backward(grad_out),
            NetLayer::AvgPool(l) => l.backward(grad_out),
            NetLayer::MaxPool(l) => l.backward(grad_out),
            NetLayer::Relu(l) => l.backward(grad_out),
            NetLayer::Flatten(l) => l.backward(grad_out),
            NetLayer::Residual(l) => l.backward(grad_out),
        }
    }

    /// Applies the pending gradient step, if the layer has parameters.
    pub fn apply_update(&mut self, lr: f32, momentum: f32) {
        match self {
            NetLayer::Conv(l) => l.apply_update(lr, momentum),
            NetLayer::Dense(l) => l.apply_update(lr, momentum),
            NetLayer::Residual(l) => l.apply_update(lr, momentum),
            _ => {}
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            NetLayer::Conv(l) => l.param_count(),
            NetLayer::Dense(l) => l.param_count(),
            NetLayer::Residual(l) => l.param_count(),
            _ => 0,
        }
    }

    /// Sets the accumulation mode of MAC layers (no-op otherwise).
    pub fn set_accum_mode(&mut self, accum: AccumMode) {
        match self {
            NetLayer::Conv(l) => l.set_accum_mode(accum),
            NetLayer::Dense(l) => l.set_accum_mode(accum),
            NetLayer::Residual(l) => l.set_accum_mode(accum),
            _ => {}
        }
    }
}

/// A feed-forward stack of layers.
///
/// # Examples
///
/// ```
/// use acoustic_nn::layers::{AccumMode, Conv2d, Dense, Flatten, Network, Relu};
/// use acoustic_nn::Tensor;
///
/// # fn main() -> Result<(), acoustic_nn::NnError> {
/// let mut net = Network::new();
/// net.push_conv(Conv2d::new(1, 4, 3, 1, 1, AccumMode::OrApprox)?);
/// net.push_relu(Relu::clamped());
/// net.push_flatten();
/// net.push_dense(Dense::new(4 * 8 * 8, 10, AccumMode::Linear)?);
/// let logits = net.forward(&Tensor::zeros(&[1, 8, 8]))?;
/// assert_eq!(logits.shape(), &[10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Network {
    layers: Vec<NetLayer>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Appends any layer.
    pub fn push(&mut self, layer: NetLayer) {
        self.layers.push(layer);
    }

    /// Appends a convolution layer.
    pub fn push_conv(&mut self, layer: Conv2d) {
        self.layers.push(NetLayer::Conv(layer));
    }

    /// Appends a dense layer.
    pub fn push_dense(&mut self, layer: Dense) {
        self.layers.push(NetLayer::Dense(layer));
    }

    /// Appends a ReLU layer.
    pub fn push_relu(&mut self, layer: Relu) {
        self.layers.push(NetLayer::Relu(layer));
    }

    /// Appends an average-pool layer.
    pub fn push_avg_pool(&mut self, layer: AvgPool2d) {
        self.layers.push(NetLayer::AvgPool(layer));
    }

    /// Appends a max-pool layer.
    pub fn push_max_pool(&mut self, layer: MaxPool2d) {
        self.layers.push(NetLayer::MaxPool(layer));
    }

    /// Appends a flatten layer.
    pub fn push_flatten(&mut self) {
        self.layers.push(NetLayer::Flatten(Flatten::new()));
    }

    /// Appends a residual block wrapping `inner`.
    pub fn push_residual(&mut self, inner: Network) {
        self.layers.push(NetLayer::Residual(Residual::new(inner)));
    }

    /// The layer stack.
    pub fn layers(&self) -> &[NetLayer] {
        &self.layers
    }

    /// Mutable access to the layer stack (e.g. for weight quantization).
    pub fn layers_mut(&mut self) -> &mut [NetLayer] {
        &mut self.layers
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(NetLayer::param_count).sum()
    }

    /// A 64-bit structural + weight fingerprint.
    ///
    /// Two networks fingerprint equal iff their layer arrangements, layer
    /// hyper-parameters and weight *bit patterns* are identical, so the
    /// value is a sound cache key for anything derived purely from the
    /// architecture and weights (e.g. `acoustic-runtime`'s prepared-model
    /// cache). The hash is FNV-1a and stable across platforms and runs.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        fingerprint_layers(&self.layers, &mut h);
        h
    }

    /// Full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the first failing layer's error.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Full backward pass from the loss gradient.
    ///
    /// # Errors
    ///
    /// Propagates the first failing layer's error.
    pub fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Applies pending gradient steps on every parameterised layer.
    pub fn apply_update(&mut self, lr: f32, momentum: f32) {
        for layer in &mut self.layers {
            layer.apply_update(lr, momentum);
        }
    }

    /// Switches the accumulation mode of all MAC layers.
    pub fn set_accum_mode(&mut self, accum: AccumMode) {
        for layer in &mut self.layers {
            layer.set_accum_mode(accum);
        }
    }

    /// Predicted class = argmax of the logits.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<usize, NnError> {
        Ok(self.forward(input)?.argmax())
    }
}

fn fnv(h: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn fingerprint_layers(layers: &[NetLayer], h: &mut u64) {
    let accum_tag = |a: AccumMode| -> u64 {
        match a {
            AccumMode::Linear => 0,
            AccumMode::OrApprox => 1,
            AccumMode::OrExact => 2,
        }
    };
    for layer in layers {
        match layer {
            NetLayer::Conv(c) => {
                fnv(h, 1);
                for d in [
                    c.in_channels(),
                    c.out_channels(),
                    c.kernel(),
                    c.stride(),
                    c.padding(),
                ] {
                    fnv(h, d as u64);
                }
                fnv(h, accum_tag(c.accum_mode()));
                for &w in c.weights() {
                    fnv(h, u64::from(w.to_bits()));
                }
            }
            NetLayer::Dense(d) => {
                fnv(h, 2);
                fnv(h, d.in_features() as u64);
                fnv(h, d.out_features() as u64);
                fnv(h, accum_tag(d.accum_mode()));
                for &w in d.weights() {
                    fnv(h, u64::from(w.to_bits()));
                }
            }
            NetLayer::AvgPool(p) => {
                fnv(h, 3);
                fnv(h, p.window() as u64);
            }
            NetLayer::MaxPool(p) => {
                fnv(h, 4);
                fnv(h, p.window() as u64);
            }
            NetLayer::Relu(r) => {
                fnv(h, 5);
                fnv(
                    h,
                    r.max_value().map_or(u64::MAX, |v| u64::from(v.to_bits())),
                );
            }
            NetLayer::Flatten(_) => fnv(h, 6),
            NetLayer::Residual(r) => {
                fnv(h, 7);
                fingerprint_layers(r.inner().layers(), h);
                fnv(h, 8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> Network {
        let mut net = Network::new();
        net.push_conv(Conv2d::new(1, 2, 3, 1, 1, AccumMode::Linear).unwrap());
        net.push_relu(Relu::clamped());
        net.push_avg_pool(AvgPool2d::new(2).unwrap());
        net.push_flatten();
        net.push_dense(Dense::new(2 * 2 * 2, 3, AccumMode::Linear).unwrap());
        net
    }

    #[test]
    fn forward_shape_propagates() {
        let mut net = tiny_net();
        let out = net.forward(&Tensor::zeros(&[1, 4, 4])).unwrap();
        assert_eq!(out.shape(), &[3]);
    }

    #[test]
    fn backward_returns_input_shaped_gradient() {
        let mut net = tiny_net();
        net.forward(&Tensor::zeros(&[1, 4, 4])).unwrap();
        let gin = net.backward(&Tensor::zeros(&[3])).unwrap();
        assert_eq!(gin.shape(), &[1, 4, 4]);
    }

    #[test]
    fn fingerprint_tracks_weights_and_structure() {
        let a = tiny_net();
        let b = tiny_net();
        assert_eq!(a.fingerprint(), b.fingerprint());

        // A single weight bit flips the fingerprint.
        let mut c = tiny_net();
        if let NetLayer::Conv(conv) = &mut c.layers_mut()[0] {
            conv.weights_mut()[0] += 0.25;
        }
        assert_ne!(a.fingerprint(), c.fingerprint());

        // A structural change (extra layer) flips it too.
        let mut d = tiny_net();
        d.push_relu(Relu::clamped());
        assert_ne!(a.fingerprint(), d.fingerprint());

        // Accumulation mode is part of the identity.
        let mut e = tiny_net();
        e.set_accum_mode(AccumMode::OrApprox);
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn param_count_sums_layers() {
        let net = tiny_net();
        // conv: 2*1*3*3 = 18; dense: 8*3 = 24.
        assert_eq!(net.param_count(), 18 + 24);
    }

    #[test]
    fn set_accum_mode_reaches_all_mac_layers() {
        let mut net = tiny_net();
        net.set_accum_mode(AccumMode::OrApprox);
        for layer in net.layers() {
            match layer {
                NetLayer::Conv(c) => assert_eq!(c.accum_mode(), AccumMode::OrApprox),
                NetLayer::Dense(d) => assert_eq!(d.accum_mode(), AccumMode::OrApprox),
                _ => {}
            }
        }
    }

    #[test]
    fn predict_returns_argmax() {
        let mut net = Network::new();
        let mut fc = Dense::new(2, 2, AccumMode::Linear).unwrap();
        fc.weights_mut().copy_from_slice(&[0.0, 0.0, 1.0, 1.0]);
        net.push_dense(fc);
        let class = net
            .predict(&Tensor::from_vec(&[2], vec![1.0, 1.0]).unwrap())
            .unwrap();
        assert_eq!(class, 1);
    }
}
