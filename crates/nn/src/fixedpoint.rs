//! 8-bit fixed-point quantization — the accuracy baseline of Table II and
//! the value grid ACOUSTIC loads into its SNG buffers.
//!
//! ACOUSTIC stores layer activations in binary between layers and regenerates
//! streams from them, so both the 8-bit baseline and the SC path share this
//! quantizer: activations are unsigned `Q0.8` in `[0, 1]`, weights signed
//! `Q1.7`-style in `[−1, 1]`.

use crate::{NnError, Tensor};

/// An affine-free symmetric quantizer with `bits` of precision over a fixed
/// range.
///
/// # Examples
///
/// ```
/// use acoustic_nn::fixedpoint::Quantizer;
///
/// # fn main() -> Result<(), acoustic_nn::NnError> {
/// let q = Quantizer::unsigned_unit(8)?; // activations in [0, 1]
/// let x = q.quantize_value(0.3337);
/// assert!((x - 0.3337).abs() <= q.step() / 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    min: f32,
    max: f32,
    levels: u32,
}

impl Quantizer {
    /// Quantizer over `[0, 1]` with `2^bits − 1` steps (unsigned
    /// activations).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `bits ∉ 1..=16`.
    pub fn unsigned_unit(bits: u32) -> Result<Self, NnError> {
        Self::new(0.0, 1.0, bits)
    }

    /// Quantizer over `[−1, 1]` (signed weights).
    ///
    /// Uses `2^bits − 2` steps (one fewer than the unsigned grid) so that
    /// the grid is symmetric and **contains exactly 0.0** — a zero weight
    /// must stay zero, or operand gating (§III-B) would leak streams.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `bits ∉ 2..=16`.
    pub fn signed_unit(bits: u32) -> Result<Self, NnError> {
        if !(2..=16).contains(&bits) {
            return Err(NnError::InvalidConfig(format!(
                "signed quantizer bits must be 2..=16, got {bits}"
            )));
        }
        Ok(Quantizer {
            min: -1.0,
            max: 1.0,
            levels: (1u32 << bits) - 2,
        })
    }

    /// General quantizer over `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `bits ∉ 1..=16` or
    /// `min >= max`.
    pub fn new(min: f32, max: f32, bits: u32) -> Result<Self, NnError> {
        if !(1..=16).contains(&bits) {
            return Err(NnError::InvalidConfig(format!(
                "quantizer bits must be 1..=16, got {bits}"
            )));
        }
        if min >= max {
            return Err(NnError::InvalidConfig(format!(
                "quantizer range [{min}, {max}] is empty"
            )));
        }
        Ok(Quantizer {
            min,
            max,
            levels: (1u32 << bits) - 1,
        })
    }

    /// Width of one quantization step.
    pub fn step(&self) -> f32 {
        (self.max - self.min) / self.levels as f32
    }

    /// Number of representable levels.
    pub fn levels(&self) -> u32 {
        self.levels + 1
    }

    /// Quantizes one value to the grid (clamping to the range first).
    pub fn quantize_value(&self, v: f32) -> f32 {
        let code = self.encode(v);
        self.decode(code)
    }

    /// Maps a value to its integer code `0..=levels`.
    pub fn encode(&self, v: f32) -> u32 {
        let clamped = v.clamp(self.min, self.max);
        (((clamped - self.min) / (self.max - self.min)) * self.levels as f32).round() as u32
    }

    /// Maps an integer code back to its representative value.
    pub fn decode(&self, code: u32) -> f32 {
        self.min + (code.min(self.levels) as f32 / self.levels as f32) * (self.max - self.min)
    }

    /// Quantizes a whole tensor.
    pub fn quantize_tensor(&self, t: &Tensor) -> Tensor {
        t.map(|v| self.quantize_value(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_grid_endpoints() {
        let q = Quantizer::unsigned_unit(8).unwrap();
        assert_eq!(q.quantize_value(0.0), 0.0);
        assert_eq!(q.quantize_value(1.0), 1.0);
        assert_eq!(q.levels(), 256);
    }

    #[test]
    fn signed_grid_endpoints() {
        let q = Quantizer::signed_unit(8).unwrap();
        assert_eq!(q.quantize_value(-1.0), -1.0);
        assert_eq!(q.quantize_value(1.0), 1.0);
    }

    #[test]
    fn error_bounded_by_half_step() {
        let q = Quantizer::unsigned_unit(8).unwrap();
        for i in 0..1000 {
            let v = i as f32 / 999.0;
            let e = (q.quantize_value(v) - v).abs();
            assert!(e <= q.step() / 2.0 + 1e-7, "v={v} err={e}");
        }
    }

    #[test]
    fn idempotent_on_grid() {
        let q = Quantizer::signed_unit(8).unwrap();
        let v = q.quantize_value(0.123);
        assert_eq!(q.quantize_value(v), v);
    }

    #[test]
    fn clamps_out_of_range() {
        let q = Quantizer::unsigned_unit(8).unwrap();
        assert_eq!(q.quantize_value(2.0), 1.0);
        assert_eq!(q.quantize_value(-3.0), 0.0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let q = Quantizer::unsigned_unit(8).unwrap();
        for code in [0u32, 1, 100, 255] {
            assert_eq!(q.encode(q.decode(code)), code);
        }
        // decode clamps codes beyond the top level
        assert_eq!(q.decode(300), 1.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Quantizer::new(0.0, 1.0, 0).is_err());
        assert!(Quantizer::new(0.0, 1.0, 17).is_err());
        assert!(Quantizer::new(1.0, 1.0, 8).is_err());
        assert!(Quantizer::new(2.0, 1.0, 8).is_err());
    }

    #[test]
    fn quantize_tensor_applies_everywhere() {
        let q = Quantizer::unsigned_unit(2).unwrap(); // steps of 1/3
        let t = Tensor::from_vec(&[3], vec![0.1, 0.5, 0.9]).unwrap();
        let r = q.quantize_tensor(&t);
        for (&orig, &quant) in t.as_slice().iter().zip(r.as_slice()) {
            assert!((quant - orig).abs() <= q.step() / 2.0 + 1e-7);
        }
    }
}

#[cfg(test)]
mod signed_grid_tests {
    use super::*;

    #[test]
    fn signed_grid_contains_zero() {
        // Operand gating depends on 0.0 staying exactly 0.0.
        for bits in [2u32, 4, 8, 16] {
            let q = Quantizer::signed_unit(bits).unwrap();
            assert_eq!(q.quantize_value(0.0), 0.0, "bits {bits}");
        }
    }

    #[test]
    fn signed_grid_is_symmetric() {
        // The grid itself is symmetric; round-half-away-from-zero may pick
        // adjacent codes for exact midpoints, so allow one step of slack.
        let q = Quantizer::signed_unit(8).unwrap();
        for i in 0..100 {
            let v = i as f32 / 100.0;
            let asym = (q.quantize_value(v) + q.quantize_value(-v)).abs();
            assert!(asym <= q.step() + 1e-7, "v={v} asym={asym}");
        }
    }

    #[test]
    fn signed_unit_rejects_one_bit() {
        assert!(Quantizer::signed_unit(1).is_err());
    }
}
