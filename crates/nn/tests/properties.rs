//! Property-based tests of the CNN substrate invariants.

use proptest::prelude::*;

use acoustic_nn::fixedpoint::Quantizer;
use acoustic_nn::layers::{AccumMode, AvgPool2d, Conv2d, Dense, MaxPool2d, Relu};
use acoustic_nn::loss::{cross_entropy, softmax};
use acoustic_nn::orsum::{or_sum_approx, or_sum_exact, or_sum_exact_grad};
use acoustic_nn::Tensor;

fn arb_tensor(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(0.0f32..=1.0, n)
        .prop_map(move |d| Tensor::from_vec(shape, d).expect("shape matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // --- OR sums ---

    #[test]
    fn or_sum_exact_bounds(values in proptest::collection::vec(0.0f64..=1.0, 0..24)) {
        let e = or_sum_exact(&values);
        prop_assert!((0.0..=1.0).contains(&e));
        let max_v = values.iter().copied().fold(0.0, f64::max);
        prop_assert!(e >= max_v - 1e-12);
    }

    #[test]
    fn or_sum_approx_never_exceeds_exact_by_much(
        values in proptest::collection::vec(0.0f64..=0.2, 1..64)
    ) {
        // For small operands the approximation lower-bounds the exact OR:
        // 1 - e^-s <= 1 - prod(1-v) when all v small (AM-GM style), within
        // numerical slack.
        let exact = or_sum_exact(&values);
        let approx = or_sum_approx(&values);
        prop_assert!(approx <= exact + 1e-9, "approx {approx} > exact {exact}");
    }

    #[test]
    fn or_sum_grad_is_nonnegative_and_bounded(
        values in proptest::collection::vec(0.0f64..0.99, 1..16)
    ) {
        for g in or_sum_exact_grad(&values) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&g));
        }
    }

    // --- Loss ---

    #[test]
    fn softmax_is_probability_vector(logits in proptest::collection::vec(-10.0f32..10.0, 1..16)) {
        let t = Tensor::from_vec(&[logits.len()], logits).unwrap();
        let p = softmax(&t);
        let sum: f32 = p.as_slice().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero(
        logits in proptest::collection::vec(-5.0f32..5.0, 2..10),
        label_raw in 0usize..10
    ) {
        let n = logits.len();
        let t = Tensor::from_vec(&[n], logits).unwrap();
        let (loss, grad) = cross_entropy(&t, label_raw % n).unwrap();
        prop_assert!(loss >= 0.0);
        let sum: f32 = grad.as_slice().iter().sum();
        prop_assert!(sum.abs() < 1e-4);
    }

    // --- Quantizer ---

    #[test]
    fn quantizer_monotone(a in -1.0f32..=1.0, b in -1.0f32..=1.0, bits in 2u32..=8) {
        let q = Quantizer::signed_unit(bits).unwrap();
        if a <= b {
            prop_assert!(q.quantize_value(a) <= q.quantize_value(b));
        }
    }

    // --- Layers: shape and range invariants ---

    #[test]
    fn clamped_relu_output_in_unit_range(x in arb_tensor(&[3, 4, 4])) {
        let mut r = Relu::clamped();
        let scaled = x.map(|v| v * 4.0 - 2.0); // push outside [0,1]
        let y = r.forward(&scaled).unwrap();
        prop_assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn avg_pool_preserves_mean(x in arb_tensor(&[2, 4, 4])) {
        let mut p = AvgPool2d::new(2).unwrap();
        let y = p.forward(&x).unwrap();
        let mean_in: f32 = x.as_slice().iter().sum::<f32>() / x.len() as f32;
        let mean_out: f32 = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        prop_assert!((mean_in - mean_out).abs() < 1e-4);
    }

    #[test]
    fn max_pool_upper_bounds_avg_pool(x in arb_tensor(&[2, 4, 4])) {
        let mut mp = MaxPool2d::new(2).unwrap();
        let mut ap = AvgPool2d::new(2).unwrap();
        let m = mp.forward(&x).unwrap();
        let a = ap.forward(&x).unwrap();
        for (mv, av) in m.as_slice().iter().zip(a.as_slice()) {
            prop_assert!(mv >= av);
        }
    }

    #[test]
    fn or_modes_bounded_outputs(x in arb_tensor(&[1, 4, 4])) {
        // OR-accumulated conv outputs live in (-1, 1) by construction.
        for mode in [AccumMode::OrApprox, AccumMode::OrExact] {
            let mut conv = Conv2d::new(1, 2, 3, 1, 1, mode).unwrap();
            let y = conv.forward(&x).unwrap();
            prop_assert!(
                y.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)),
                "{mode:?} escaped (-1,1)"
            );
        }
    }

    #[test]
    fn or_approx_conv_close_to_or_exact_for_small_weights(x in arb_tensor(&[1, 4, 4])) {
        let mut approx = Conv2d::new(1, 1, 3, 1, 1, AccumMode::OrApprox).unwrap();
        let mut exact = Conv2d::new(1, 1, 3, 1, 1, AccumMode::OrExact).unwrap();
        // Same small weights in both.
        for (i, w) in approx.weights_mut().iter_mut().enumerate() {
            *w = ((i % 5) as f32 - 2.0) * 0.02;
        }
        let w: Vec<f32> = approx.weights().to_vec();
        exact.weights_mut().copy_from_slice(&w);
        let ya = approx.forward(&x).unwrap();
        let ye = exact.forward(&x).unwrap();
        for (a, e) in ya.as_slice().iter().zip(ye.as_slice()) {
            prop_assert!((a - e).abs() < 0.02, "approx {a} vs exact {e}");
        }
    }

    #[test]
    fn dense_linear_is_homogeneous(scale in 0.1f32..2.0, x in arb_tensor(&[6])) {
        // f(c·x) = c·f(x) for the linear mode (no bias).
        let mut fc = Dense::new(6, 3, AccumMode::Linear).unwrap();
        let y1 = fc.forward(&x).unwrap();
        let scaled = x.map(|v| v * scale);
        let y2 = fc.forward(&scaled).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serialization_roundtrips_random_weights(
        weights in proptest::collection::vec(-1.0f32..=1.0, 8),
        input in proptest::collection::vec(0.0f32..=1.0, 4)
    ) {
        use acoustic_nn::layers::Network;
        use acoustic_nn::serialize::{from_text, to_text};
        let mut net = Network::new();
        let mut fc = Dense::new(4, 2, AccumMode::OrApprox).unwrap();
        fc.weights_mut().copy_from_slice(&weights);
        net.push_dense(fc);
        let mut back = from_text(&to_text(&net)).unwrap();
        let x = Tensor::from_vec(&[4], input).unwrap();
        prop_assert_eq!(net.forward(&x).unwrap(), back.forward(&x).unwrap());
    }
}
