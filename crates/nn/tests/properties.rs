//! Property-style tests of the CNN substrate invariants.
//!
//! Formerly written against the external `proptest` crate; the repo now
//! builds fully offline, so each property is exercised over a deterministic
//! [`DetRng`]-driven sample sweep instead of a shrinking random search. The
//! invariants themselves are unchanged.

use acoustic_core::DetRng;
use acoustic_nn::fixedpoint::Quantizer;
use acoustic_nn::layers::{AccumMode, AvgPool2d, Conv2d, Dense, MaxPool2d, Relu};
use acoustic_nn::loss::{cross_entropy, softmax};
use acoustic_nn::orsum::{or_sum_approx, or_sum_exact, or_sum_exact_grad};
use acoustic_nn::Tensor;

const CASES: usize = 48;

fn rng(test_tag: u64) -> DetRng {
    DetRng::seed_from_u64(0xAC0_0571C ^ test_tag)
}

fn rand_tensor(rng: &mut DetRng, shape: &[usize]) -> Tensor {
    let n: usize = shape.iter().product();
    let d: Vec<f32> = (0..n).map(|_| rng.gen_range_f32(0.0, 1.0)).collect();
    Tensor::from_vec(shape, d).expect("shape matches")
}

fn rand_vec_f64(rng: &mut DetRng, lo: f64, hi: f64, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range_f64(lo, hi)).collect()
}

// --- OR sums ---

#[test]
fn or_sum_exact_bounds() {
    let mut r = rng(1);
    for _ in 0..CASES {
        let len = r.gen_range_usize(0, 24);
        let values = rand_vec_f64(&mut r, 0.0, 1.0, len);
        let e = or_sum_exact(&values);
        assert!((0.0..=1.0).contains(&e));
        let max_v = values.iter().copied().fold(0.0, f64::max);
        assert!(e >= max_v - 1e-12);
    }
}

#[test]
fn or_sum_approx_never_exceeds_exact_by_much() {
    let mut r = rng(2);
    for _ in 0..CASES {
        // For small operands the approximation lower-bounds the exact OR:
        // 1 - e^-s <= 1 - prod(1-v) when all v small (AM-GM style), within
        // numerical slack.
        let len = r.gen_range_usize(1, 64);
        let values = rand_vec_f64(&mut r, 0.0, 0.2, len);
        let exact = or_sum_exact(&values);
        let approx = or_sum_approx(&values);
        assert!(approx <= exact + 1e-9, "approx {approx} > exact {exact}");
    }
}

#[test]
fn or_sum_grad_is_nonnegative_and_bounded() {
    let mut r = rng(3);
    for _ in 0..CASES {
        let len = r.gen_range_usize(1, 16);
        let values = rand_vec_f64(&mut r, 0.0, 0.99, len);
        for g in or_sum_exact_grad(&values) {
            assert!((0.0..=1.0 + 1e-9).contains(&g));
        }
    }
}

// --- Loss ---

#[test]
fn softmax_is_probability_vector() {
    let mut r = rng(4);
    for _ in 0..CASES {
        let len = r.gen_range_usize(1, 16);
        let logits: Vec<f32> = (0..len).map(|_| r.gen_range_f32(-10.0, 10.0)).collect();
        let t = Tensor::from_vec(&[logits.len()], logits).unwrap();
        let p = softmax(&t);
        let sum: f32 = p.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(p.as_slice().iter().all(|&v| v >= 0.0));
    }
}

#[test]
fn cross_entropy_grad_sums_to_zero() {
    let mut r = rng(5);
    for _ in 0..CASES {
        let n = r.gen_range_usize(2, 10);
        let logits: Vec<f32> = (0..n).map(|_| r.gen_range_f32(-5.0, 5.0)).collect();
        let label_raw = r.gen_range_usize(0, 10);
        let t = Tensor::from_vec(&[n], logits).unwrap();
        let (loss, grad) = cross_entropy(&t, label_raw % n).unwrap();
        assert!(loss >= 0.0);
        let sum: f32 = grad.as_slice().iter().sum();
        assert!(sum.abs() < 1e-4);
    }
}

// --- Quantizer ---

#[test]
fn quantizer_monotone() {
    let mut r = rng(6);
    for _ in 0..CASES {
        let a = r.gen_range_f32(-1.0, 1.0);
        let b = r.gen_range_f32(-1.0, 1.0);
        let bits = r.gen_range_usize(2, 9) as u32;
        let q = Quantizer::signed_unit(bits).unwrap();
        if a <= b {
            assert!(q.quantize_value(a) <= q.quantize_value(b));
        }
    }
}

// --- Layers: shape and range invariants ---

#[test]
fn clamped_relu_output_in_unit_range() {
    let mut r = rng(7);
    for _ in 0..CASES {
        let x = rand_tensor(&mut r, &[3, 4, 4]);
        let mut relu = Relu::clamped();
        let scaled = x.map(|v| v * 4.0 - 2.0); // push outside [0,1]
        let y = relu.forward(&scaled).unwrap();
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

#[test]
fn avg_pool_preserves_mean() {
    let mut r = rng(8);
    for _ in 0..CASES {
        let x = rand_tensor(&mut r, &[2, 4, 4]);
        let mut p = AvgPool2d::new(2).unwrap();
        let y = p.forward(&x).unwrap();
        let mean_in: f32 = x.as_slice().iter().sum::<f32>() / x.len() as f32;
        let mean_out: f32 = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        assert!((mean_in - mean_out).abs() < 1e-4);
    }
}

#[test]
fn max_pool_upper_bounds_avg_pool() {
    let mut r = rng(9);
    for _ in 0..CASES {
        let x = rand_tensor(&mut r, &[2, 4, 4]);
        let mut mp = MaxPool2d::new(2).unwrap();
        let mut ap = AvgPool2d::new(2).unwrap();
        let m = mp.forward(&x).unwrap();
        let a = ap.forward(&x).unwrap();
        for (mv, av) in m.as_slice().iter().zip(a.as_slice()) {
            assert!(mv >= av);
        }
    }
}

#[test]
fn or_modes_bounded_outputs() {
    let mut r = rng(10);
    for _ in 0..CASES {
        let x = rand_tensor(&mut r, &[1, 4, 4]);
        // OR-accumulated conv outputs live in (-1, 1) by construction.
        for mode in [AccumMode::OrApprox, AccumMode::OrExact] {
            let mut conv = Conv2d::new(1, 2, 3, 1, 1, mode).unwrap();
            let y = conv.forward(&x).unwrap();
            assert!(
                y.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)),
                "{mode:?} escaped (-1,1)"
            );
        }
    }
}

#[test]
fn or_approx_conv_close_to_or_exact_for_small_weights() {
    let mut r = rng(11);
    for _ in 0..CASES {
        let x = rand_tensor(&mut r, &[1, 4, 4]);
        let mut approx = Conv2d::new(1, 1, 3, 1, 1, AccumMode::OrApprox).unwrap();
        let mut exact = Conv2d::new(1, 1, 3, 1, 1, AccumMode::OrExact).unwrap();
        // Same small weights in both.
        for (i, w) in approx.weights_mut().iter_mut().enumerate() {
            *w = ((i % 5) as f32 - 2.0) * 0.02;
        }
        let w: Vec<f32> = approx.weights().to_vec();
        exact.weights_mut().copy_from_slice(&w);
        let ya = approx.forward(&x).unwrap();
        let ye = exact.forward(&x).unwrap();
        for (a, e) in ya.as_slice().iter().zip(ye.as_slice()) {
            assert!((a - e).abs() < 0.02, "approx {a} vs exact {e}");
        }
    }
}

#[test]
fn dense_linear_is_homogeneous() {
    let mut r = rng(12);
    for _ in 0..CASES {
        let scale = r.gen_range_f32(0.1, 2.0);
        let x = rand_tensor(&mut r, &[6]);
        // f(c·x) = c·f(x) for the linear mode (no bias).
        let mut fc = Dense::new(6, 3, AccumMode::Linear).unwrap();
        let y1 = fc.forward(&x).unwrap();
        let scaled = x.map(|v| v * scale);
        let y2 = fc.forward(&scaled).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a * scale - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }
}

#[test]
fn serialization_roundtrips_random_weights() {
    use acoustic_nn::layers::Network;
    use acoustic_nn::serialize::{from_text, to_text};
    let mut r = rng(13);
    for _ in 0..24 {
        let weights: Vec<f32> = (0..8).map(|_| r.gen_range_f32(-1.0, 1.0)).collect();
        let input: Vec<f32> = (0..4).map(|_| r.gen_range_f32(0.0, 1.0)).collect();
        let mut net = Network::new();
        let mut fc = Dense::new(4, 2, AccumMode::OrApprox).unwrap();
        fc.weights_mut().copy_from_slice(&weights);
        net.push_dense(fc);
        let mut back = from_text(&to_text(&net)).unwrap();
        let x = Tensor::from_vec(&[4], input).unwrap();
        assert_eq!(net.forward(&x).unwrap(), back.forward(&x).unwrap());
    }
}
