//! Minimal level-triggered readiness poller.
//!
//! The poller is deliberately the simplest thing that works: callers
//! register `(token, fd, interest)` triples, and every [`Poller::wait`]
//! rebuilds the kernel pollfd array from the registration table and calls
//! `ppoll(2)`. Rebuilding per tick is O(n) in registered fds, which for a
//! serving reactor is dwarfed by the per-event protocol work — and it
//! makes the poller trivially level-triggered with no stale-interest
//! bookkeeping (the perennial epoll bug class).
//!
//! Tokens are caller-chosen `usize` identifiers carried back on
//! [`Event`]s; the poller never interprets them.

use std::collections::HashMap;
use std::io;
use std::time::Duration;

use crate::sys::{self, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

/// What a registered descriptor should be watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable only.
    Read,
    /// Writable only.
    Write,
    /// Both directions.
    ReadWrite,
}

impl Interest {
    fn events(self) -> i16 {
        match self {
            Interest::Read => POLLIN,
            Interest::Write => POLLOUT,
            Interest::ReadWrite => POLLIN | POLLOUT,
        }
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration.
    pub token: usize,
    /// Readable (or peer closed; a read will not block).
    pub readable: bool,
    /// Writable without blocking.
    pub writable: bool,
    /// Error/hangup/invalid condition; the owner should tear the
    /// descriptor down after draining what it can.
    pub error: bool,
}

/// Level-triggered poller over raw file descriptors.
///
/// Not thread-safe by design: exactly one reactor thread owns it. Other
/// threads interrupt a blocked [`Poller::wait`] via [`crate::Waker`].
#[derive(Debug, Default)]
pub struct Poller {
    // token -> (fd, interest). HashMap rather than Vec-by-token because
    // connection tokens are sparse once conns churn.
    registered: HashMap<usize, (i32, Interest)>,
    // Scratch buffers reused across ticks.
    fds: Vec<PollFd>,
    tokens: Vec<usize>,
}

impl Poller {
    /// A poller with no registrations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether readiness polling works on this target. When `false`,
    /// [`Poller::wait`] always fails and callers should use a threaded
    /// fallback instead of constructing a reactor.
    pub fn supported() -> bool {
        sys::SUPPORTED
    }

    /// Registers `fd` under `token`, replacing any previous registration
    /// of the same token.
    pub fn register(&mut self, token: usize, fd: i32, interest: Interest) {
        self.registered.insert(token, (fd, interest));
    }

    /// Changes the interest of an existing registration; no-op for an
    /// unknown token.
    pub fn reregister(&mut self, token: usize, interest: Interest) {
        if let Some(entry) = self.registered.get_mut(&token) {
            entry.1 = interest;
        }
    }

    /// Removes a registration; no-op for an unknown token.
    pub fn deregister(&mut self, token: usize) {
        self.registered.remove(&token);
    }

    /// Number of currently registered descriptors.
    pub fn len(&self) -> usize {
        self.registered.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.registered.is_empty()
    }

    /// Blocks until at least one registered descriptor is ready or the
    /// timeout elapses, appending readiness notifications to `events`
    /// (which is cleared first). Returns the number of events delivered.
    ///
    /// # Errors
    ///
    /// Propagates `ppoll` failures; `ErrorKind::Unsupported` on targets
    /// without the syscall shim.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        self.fds.clear();
        self.tokens.clear();
        for (&token, &(fd, interest)) in &self.registered {
            self.fds.push(PollFd {
                fd,
                events: interest.events(),
                revents: 0,
            });
            self.tokens.push(token);
        }
        let n = sys::ppoll(&mut self.fds, timeout)?;
        if n == 0 {
            return Ok(0);
        }
        for (i, pfd) in self.fds.iter().enumerate() {
            if pfd.revents == 0 {
                continue;
            }
            events.push(Event {
                token: self.tokens[i],
                readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                writable: pfd.revents & POLLOUT != 0,
                error: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
            });
        }
        Ok(events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn registration_table_bookkeeping() {
        let mut p = Poller::new();
        assert!(p.is_empty());
        p.register(7, 0, Interest::Read);
        p.register(9, 1, Interest::Write);
        assert_eq!(p.len(), 2);
        p.register(7, 2, Interest::ReadWrite); // replace, not duplicate
        assert_eq!(p.len(), 2);
        p.deregister(9);
        p.deregister(9); // double-deregister is a no-op
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn wait_sees_readable_and_writable() {
        if !Poller::supported() {
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();

        let mut p = Poller::new();
        p.register(1, rx.as_raw_fd(), Interest::Read);
        let mut events = Vec::new();

        // Idle socket: timeout, no events.
        let n = p
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        tx.write_all(b"hello").unwrap();
        let n = p
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 1);
        assert!(events[0].readable);
        assert!(!events[0].writable, "write interest was not requested");

        // Level-triggered: the unread byte keeps firing.
        let n = p
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(n, 1);

        // Widen interest: an idle TCP socket is immediately writable.
        p.reregister(1, Interest::ReadWrite);
        let n = p
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable && events[0].writable);
    }

    #[test]
    fn peer_close_reads_as_readable() {
        if !Poller::supported() {
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        drop(tx);

        let mut p = Poller::new();
        p.register(3, rx.as_raw_fd(), Interest::Read);
        let mut events = Vec::new();
        let n = p.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert!(
            events[0].readable,
            "EOF must surface as readable so the owner observes read()==0"
        );
    }
}
