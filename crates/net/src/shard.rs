//! Sharded, bounded, *rejecting* MPMC admission queue with work-stealing.
//!
//! The serving layer's original `BoundedQueue` is a single mutex+condvar
//! pair — correct, but every acceptor and every worker contends on one
//! lock. `ShardedQueue` splits the same contract across per-worker-group
//! shards:
//!
//! * **Capacity is global and exact.** The requested capacity is divided
//!   across shards (shard `i` gets `base + (i < extra)`), so the sum of
//!   shard capacities equals the configured capacity and the total depth
//!   high-water mark can never exceed it — existing overload assertions
//!   keep holding verbatim.
//! * **Push overflows before rejecting.** A producer tries its home shard
//!   first, then wraps across the others; `Full` is returned only when
//!   every shard is at capacity, preserving "full queue == overload
//!   signal" semantics rather than inventing per-shard false rejections.
//! * **Pop steals before sleeping.** A consumer drains its own shard,
//!   then scans the others (counting each cross-shard take as a steal),
//!   and only then parks on its own shard's condvar.
//! * **Close is race-free.** The closed flag lives *inside* each shard's
//!   mutex — a push serialized after `close` can never strand an item,
//!   and `Drained` is reported only once every shard is observed closed
//!   and empty under its own lock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPush {
    /// Every shard is at capacity — the overload signal.
    Full,
    /// The queue has been closed for shutdown.
    Closed,
}

/// Outcome of a timed pop.
#[derive(Debug)]
pub enum ShardPop<T> {
    /// An item, from the consumer's own shard or stolen from another.
    Item(T),
    /// Nothing arrived within the timeout; the queue is still live.
    TimedOut,
    /// Closed and every shard empty — consumers can exit.
    Drained,
}

#[derive(Debug)]
struct ShardInner<T> {
    items: VecDeque<T>,
    closed: bool,
    hwm: usize,
}

#[derive(Debug)]
struct Shard<T> {
    inner: Mutex<ShardInner<T>>,
    ready: Condvar,
    capacity: usize,
}

/// Bounded rejecting MPMC queue, sharded with work-stealing.
#[derive(Debug)]
pub struct ShardedQueue<T> {
    shards: Vec<Shard<T>>,
    capacity: usize,
    // Global depth gauge: incremented under the receiving shard's lock,
    // decremented under the releasing shard's lock, so it can never
    // exceed `capacity` (each increment corresponds to a held slot).
    depth: AtomicU64,
    depth_hwm: AtomicU64,
    steals: AtomicU64,
}

impl<T> ShardedQueue<T> {
    /// A queue of `capacity` total slots split across `shards` shards.
    /// Both are clamped to at least 1, and the shard count to at most
    /// `capacity` so no shard ends up with zero slots.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards = (0..shards)
            .map(|i| Shard {
                inner: Mutex::new(ShardInner {
                    items: VecDeque::new(),
                    closed: false,
                    hwm: 0,
                }),
                ready: Condvar::new(),
                capacity: base + usize::from(i < extra),
            })
            .collect();
        Self {
            shards,
            capacity,
            depth: AtomicU64::new(0),
            depth_hwm: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total configured capacity (exactly the constructor argument).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current total depth across all shards (advisory gauge).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed) as usize
    }

    /// Highest total depth ever observed across all shards.
    pub fn depth_hwm(&self) -> u64 {
        self.depth_hwm.load(Ordering::Relaxed)
    }

    /// Highest single-shard depth ever observed.
    pub fn shard_depth_hwm(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.inner.lock().unwrap().hwm as u64)
            .max()
            .unwrap_or(0)
    }

    /// Cross-shard takes performed by consumers.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Non-blocking push with `home` as the preferred shard (wrapped into
    /// range). Overflows across the other shards before reporting `Full`.
    ///
    /// # Errors
    ///
    /// [`ShardPush::Full`] when every shard is at capacity,
    /// [`ShardPush::Closed`] once [`ShardedQueue::close`] has run.
    pub fn try_push(&self, item: T, home: usize) -> Result<(), ShardPush> {
        let n = self.shards.len();
        let home = home % n;
        for offset in 0..n {
            let shard = &self.shards[(home + offset) % n];
            let mut g = shard.inner.lock().unwrap();
            if g.closed {
                // close() flips every shard under its lock, so seeing one
                // closed shard means admission is over everywhere.
                return Err(ShardPush::Closed);
            }
            if g.items.len() >= shard.capacity {
                continue;
            }
            g.items.push_back(item);
            g.hwm = g.hwm.max(g.items.len());
            let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
            self.depth_hwm.fetch_max(d, Ordering::Relaxed);
            drop(g);
            shard.ready.notify_one();
            return Ok(());
        }
        Err(ShardPush::Full)
    }

    /// Timed pop for the consumer that owns shard `home` (wrapped into
    /// range): own shard first, then a steal scan, then a park on the own
    /// shard's condvar until `timeout` elapses.
    pub fn pop(&self, home: usize, timeout: Duration) -> ShardPop<T> {
        let n = self.shards.len();
        let home = home % n;
        let deadline = Instant::now() + timeout;
        loop {
            // Scan starting at home; offset 0 is a local take, the rest
            // are steals. Also collect the drain verdict: a shard seen
            // closed+empty under its lock can never refill.
            let mut all_drained = true;
            for offset in 0..n {
                let shard = &self.shards[(home + offset) % n];
                let mut g = shard.inner.lock().unwrap();
                if let Some(item) = g.items.pop_front() {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    if offset != 0 {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    return ShardPop::Item(item);
                }
                if !g.closed {
                    all_drained = false;
                }
            }
            if all_drained {
                return ShardPop::Drained;
            }
            // Park on the home shard. Re-check under the lock we are
            // about to sleep with, so a push between the scan above and
            // the wait below cannot be a lost wakeup.
            let shard = &self.shards[home];
            let mut g = shard.inner.lock().unwrap();
            if let Some(item) = g.items.pop_front() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                return ShardPop::Item(item);
            }
            if !g.closed {
                let now = Instant::now();
                if now >= deadline {
                    return ShardPop::TimedOut;
                }
                let (guard, _) = shard.ready.wait_timeout(g, deadline - now).unwrap();
                drop(guard);
                if Instant::now() >= deadline {
                    // One last steal scan before giving the caller back
                    // control, in case the wakeup was for another shard.
                    continue;
                }
            }
        }
    }

    /// Closes every shard for admission and wakes all parked consumers.
    /// Items already queued remain poppable until [`ShardPop::Drained`].
    pub fn close(&self) {
        for shard in &self.shards {
            shard.inner.lock().unwrap().closed = true;
            shard.ready.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const TICK: Duration = Duration::from_millis(50);

    #[test]
    fn capacity_splits_exactly() {
        let q: ShardedQueue<u32> = ShardedQueue::new(7, 3);
        assert_eq!(q.shards(), 3);
        assert_eq!(q.capacity(), 7);
        let caps: Vec<usize> = q.shards.iter().map(|s| s.capacity).collect();
        assert_eq!(caps.iter().sum::<usize>(), 7);
        assert_eq!(caps, vec![3, 2, 2]);
        // More shards than slots: clamp so every shard holds something.
        let q: ShardedQueue<u32> = ShardedQueue::new(2, 8);
        assert_eq!(q.shards(), 2);
    }

    #[test]
    fn push_overflows_before_rejecting() {
        let q = ShardedQueue::new(4, 2);
        // All four pushes target home shard 0; two must overflow to 1.
        for i in 0..4 {
            q.try_push(i, 0).unwrap();
        }
        assert_eq!(q.try_push(99, 0), Err(ShardPush::Full));
        assert_eq!(q.depth_hwm(), 4);
        assert_eq!(q.shard_depth_hwm(), 2);
        // FIFO within the home shard; overflow items live on shard 1.
        match q.pop(0, TICK) {
            ShardPop::Item(v) => assert_eq!(v, 0),
            other => panic!("expected item, got {other:?}"),
        }
    }

    #[test]
    fn pop_steals_from_other_shards_and_counts() {
        let q = ShardedQueue::new(8, 4);
        q.try_push(42u32, 3).unwrap();
        // Consumer 0's own shard is empty; it must steal from shard 3.
        match q.pop(0, TICK) {
            ShardPop::Item(v) => assert_eq!(v, 42),
            other => panic!("expected steal, got {other:?}"),
        }
        assert_eq!(q.steals(), 1);
        // A local take does not count as a steal.
        q.try_push(7u32, 1).unwrap();
        match q.pop(1, TICK) {
            ShardPop::Item(v) => assert_eq!(v, 7),
            other => panic!("expected local item, got {other:?}"),
        }
        assert_eq!(q.steals(), 1);
    }

    #[test]
    fn timed_out_then_drained() {
        let q: ShardedQueue<u32> = ShardedQueue::new(4, 2);
        let start = Instant::now();
        assert!(matches!(
            q.pop(0, Duration::from_millis(20)),
            ShardPop::TimedOut
        ));
        assert!(start.elapsed() >= Duration::from_millis(15));
        q.close();
        assert!(matches!(q.pop(0, TICK), ShardPop::Drained));
        assert_eq!(q.try_push(1, 0), Err(ShardPush::Closed));
    }

    #[test]
    fn close_drains_remaining_items_first() {
        let q = ShardedQueue::new(4, 2);
        q.try_push(1u32, 0).unwrap();
        q.try_push(2u32, 1).unwrap();
        q.close();
        let mut got = Vec::new();
        loop {
            match q.pop(0, TICK) {
                ShardPop::Item(v) => got.push(v),
                ShardPop::Drained => break,
                ShardPop::TimedOut => panic!("closed queue must not time out"),
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn close_wakes_parked_consumers() {
        let q: Arc<ShardedQueue<u32>> = Arc::new(ShardedQueue::new(4, 2));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop(1, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        let start = Instant::now();
        assert!(matches!(t.join().unwrap(), ShardPop::Drained));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "consumer slept through close()"
        );
    }

    #[test]
    fn push_wakes_a_parked_home_consumer() {
        let q: Arc<ShardedQueue<u32>> = Arc::new(ShardedQueue::new(4, 2));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop(0, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(30));
        q.try_push(5, 0).unwrap();
        match t.join().unwrap() {
            ShardPop::Item(v) => assert_eq!(v, 5),
            other => panic!("expected wakeup with item, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_producers_consumers_account_for_everything() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 500;
        let q: Arc<ShardedQueue<usize>> = Arc::new(ShardedQueue::new(16, 4));
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let mut consumers = Vec::new();
        for c in 0..4 {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            consumers.push(std::thread::spawn(move || loop {
                match q.pop(c, TICK) {
                    ShardPop::Item(v) => consumed.lock().unwrap().push(v),
                    ShardPop::TimedOut => continue,
                    ShardPop::Drained => break,
                }
            }));
        }
        let mut producers = Vec::new();
        let rejected = Arc::new(AtomicU64::new(0));
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            let rejected = Arc::clone(&rejected);
            producers.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    loop {
                        match q.try_push(p * PER_PRODUCER + i, p) {
                            Ok(()) => break,
                            Err(ShardPush::Full) => std::thread::yield_now(),
                            Err(ShardPush::Closed) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
            }));
        }
        for t in producers {
            t.join().unwrap();
        }
        q.close();
        for t in consumers {
            t.join().unwrap();
        }
        let mut got = consumed.lock().unwrap().clone();
        got.sort_unstable();
        let expect: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(
            got, expect,
            "every accepted item must be consumed exactly once"
        );
        assert_eq!(rejected.load(Ordering::Relaxed), 0);
        assert!(
            q.depth_hwm() <= 16,
            "hwm {} exceeded capacity",
            q.depth_hwm()
        );
    }
}
