//! acoustic-net: the std-only networking substrate under acoustic-serve.
//!
//! The serving layer's original design — one blocking reader thread per
//! connection feeding a single global bounded queue — tops out long before
//! the simulation kernels do. This crate provides the three pieces that
//! replace it, all without external dependencies:
//!
//! * **Readiness polling** ([`poll`]) — a minimal level-triggered poller
//!   over raw file descriptors. On Linux it calls `ppoll(2)` directly
//!   through a tiny inline-assembly shim ([`sys`]), keeping the workspace
//!   libc-free; elsewhere [`Poller::supported`] reports `false` and
//!   callers degrade to their threaded fallback path.
//! * **Cross-thread wakeups** ([`wake`]) — a loopback-socketpair waker so
//!   worker threads can interrupt a poller blocked in `ppoll` when they
//!   enqueue bytes for a connection the poller owns.
//! * **Connection buffers** ([`conn`]) — reusable read-accumulation and
//!   write-backpressure buffers for per-connection state machines over
//!   non-blocking streams (partial headers, partial bodies, short writes).
//! * **Sharded admission** ([`shard`]) — a bounded, *rejecting* MPMC queue
//!   split into per-worker-group shards with work-stealing between them,
//!   preserving the "full queue is an overload signal" contract of the
//!   original single queue while removing its single lock.
//! * **Topology** ([`topology`]) — sysfs-based core/SMT probing and
//!   affinity pinning so worker groups can be spread across physical
//!   cores first, and so benchmark artifacts can record the host layout
//!   that produced them.
//!
//! The only `unsafe` code in the crate lives in [`sys`]; every other
//! module is safe Rust over `std::net`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod conn;
pub mod poll;
pub mod shard;
pub mod sys;
pub mod topology;
pub mod wake;

pub use conn::{FrameBuf, ReadOutcome, WriteBuf};
pub use poll::{Event, Interest, Poller};
pub use shard::{ShardPop, ShardPush, ShardedQueue};
pub use topology::Topology;
pub use wake::Waker;
