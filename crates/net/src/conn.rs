//! Per-connection byte buffers for non-blocking streams.
//!
//! A reactor-owned connection needs exactly two pieces of elastic state:
//! an inbound accumulator that survives partial header/body reads
//! ([`FrameBuf`]) and an outbound spool that survives short writes under
//! backpressure ([`WriteBuf`]). Both are protocol-agnostic — framing
//! (header parsing, length validation) stays with the caller, which keeps
//! this crate reusable and the wire format in one place.

use std::io::{self, Read, Write};

/// Result of one non-blocking read pass into a [`FrameBuf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n` new bytes were appended (n > 0).
    Data(usize),
    /// The socket had nothing to give right now.
    WouldBlock,
    /// Orderly end of stream — the peer will send no more bytes.
    Eof,
}

/// Inbound accumulation buffer: bytes arrive in arbitrary fragments and
/// are consumed in whole-frame units by the caller.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    // Consumed prefix; compacted lazily so per-frame consumption is O(1)
    // amortized instead of a memmove per frame.
    start: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The unconsumed bytes, in arrival order.
    pub fn bytes(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends bytes directly (test helper and non-socket ingestion).
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Marks the first `n` unconsumed bytes as processed.
    ///
    /// # Panics
    ///
    /// If `n` exceeds [`FrameBuf::len`].
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "consumed past the buffered bytes");
        self.start += n;
        // Compact once the dead prefix dominates, so the buffer does not
        // grow without bound across a long-lived connection.
        if self.start >= 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
    }

    /// One read pass from a non-blocking stream. Reads at most one chunk
    /// (up to 64 KiB) so a firehose connection cannot starve its siblings
    /// on the same reactor tick; level-triggered polling re-delivers the
    /// readable event if more is pending.
    ///
    /// # Errors
    ///
    /// Hard socket errors (connection reset, etc.); `WouldBlock` and
    /// `Interrupted` are folded into [`ReadOutcome`] / retried.
    pub fn read_from<R: Read>(&mut self, stream: &mut R) -> io::Result<ReadOutcome> {
        let mut chunk = [0u8; 65536];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(ReadOutcome::Data(n));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(ReadOutcome::WouldBlock)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Outbound spool: frames are queued whole and flushed in as many short
/// writes as the socket's send buffer demands.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    start: usize,
}

impl WriteBuf {
    /// An empty spool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes still awaiting the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether everything queued has been flushed.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Queues `data` after whatever is already pending.
    pub fn queue(&mut self, data: &[u8]) {
        if self.is_empty() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Writes as much as the socket will take right now. Returns `true`
    /// when the spool drained completely, `false` if bytes remain (the
    /// caller should keep write interest registered).
    ///
    /// # Errors
    ///
    /// Hard socket errors; `WouldBlock` simply returns `false` and
    /// `Interrupted` is retried.
    pub fn flush_to<W: Write>(&mut self, stream: &mut W) -> io::Result<bool> {
        while self.start < self.buf.len() {
            match stream.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.start += n;
                    // Reclaim a large flushed prefix mid-stream.
                    if self.start >= 65536 && self.start * 2 >= self.buf.len() {
                        self.buf.drain(..self.start);
                        self.start = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.start = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framebuf_accumulates_and_consumes() {
        let mut fb = FrameBuf::new();
        assert!(fb.is_empty());
        fb.extend(b"hel");
        fb.extend(b"lo world");
        assert_eq!(fb.bytes(), b"hello world");
        fb.consume(6);
        assert_eq!(fb.bytes(), b"world");
        fb.consume(5);
        assert!(fb.is_empty());
    }

    #[test]
    #[should_panic(expected = "consumed past")]
    fn framebuf_overconsume_panics() {
        let mut fb = FrameBuf::new();
        fb.extend(b"ab");
        fb.consume(3);
    }

    #[test]
    fn framebuf_compaction_preserves_tail() {
        let mut fb = FrameBuf::new();
        // Push enough that the compaction threshold trips mid-run, and
        // verify byte identity end to end.
        let frame: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut seen = Vec::new();
        for _ in 0..64 {
            fb.extend(&frame);
            // Consume in awkward 7-byte units to exercise partial frames.
            while fb.len() >= 7 {
                seen.extend_from_slice(&fb.bytes()[..7]);
                fb.consume(7);
            }
        }
        seen.extend_from_slice(fb.bytes());
        let n = fb.len();
        fb.consume(n);
        let expect: Vec<u8> = (0..64).flat_map(|_| frame.clone()).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn framebuf_reads_nonblocking_stream() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let mut fb = FrameBuf::new();
        assert_eq!(fb.read_from(&mut rx).unwrap(), ReadOutcome::WouldBlock);

        tx.write_all(b"abc").unwrap();
        // Wait for delivery without a poller: retry briefly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match fb.read_from(&mut rx).unwrap() {
                ReadOutcome::Data(_) => break,
                ReadOutcome::WouldBlock if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(1))
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        assert_eq!(fb.bytes(), b"abc");

        drop(tx);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match fb.read_from(&mut rx).unwrap() {
                ReadOutcome::Eof => break,
                ReadOutcome::WouldBlock if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(1))
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
    }

    #[test]
    fn writebuf_survives_short_writes() {
        // A Write impl that accepts at most 3 bytes per call, and refuses
        // every other call, emulating a congested socket.
        struct Dribble {
            sink: Vec<u8>,
            turn: bool,
        }
        impl Write for Dribble {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.turn = !self.turn;
                if !self.turn {
                    return Err(io::Error::from(io::ErrorKind::WouldBlock));
                }
                let n = data.len().min(3);
                self.sink.extend_from_slice(&data[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut wb = WriteBuf::new();
        let mut sock = Dribble {
            sink: Vec::new(),
            turn: false,
        };
        wb.queue(b"the quick brown fox");
        wb.queue(b" jumps over");
        let mut drained = false;
        for _ in 0..64 {
            if wb.flush_to(&mut sock).unwrap() {
                drained = true;
                break;
            }
        }
        assert!(drained);
        assert!(wb.is_empty());
        assert_eq!(sock.sink, b"the quick brown fox jumps over");
    }

    #[test]
    fn writebuf_queue_after_drain_reuses_storage() {
        let mut wb = WriteBuf::new();
        wb.queue(b"abc");
        let mut out = Vec::new();
        assert!(wb.flush_to(&mut out).unwrap());
        wb.queue(b"def");
        assert_eq!(wb.pending(), 3);
        assert!(wb.flush_to(&mut out).unwrap());
        assert_eq!(out, b"abcdef");
    }
}
