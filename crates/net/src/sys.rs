//! The crate's only `unsafe` code: raw Linux syscalls via inline assembly.
//!
//! Two syscalls are enough for the whole reactor: `ppoll(2)` for
//! level-triggered readiness over raw file descriptors, and
//! `sched_setaffinity(2)` for pinning worker threads. Both are invoked
//! directly so the workspace stays free of `libc` (and of `/proc`
//! scraping); on targets without a shim the constants below report the
//! facility as unsupported and callers fall back to portable paths.
//!
//! The assembly follows the kernel ABI exactly:
//!
//! * x86_64 — `syscall`, number in `rax`, args in `rdi rsi rdx r10 r8`,
//!   clobbers `rcx`/`r11`.
//! * aarch64 — `svc 0`, number in `x8`, args in `x0..x4`.
//!
//! Negative return values are `-errno`.

use std::io;
use std::time::Duration;

/// One entry of a `ppoll` fd set, ABI-compatible with the kernel's
/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch (negative entries are ignored by the
    /// kernel, which callers can use to mask a slot out).
    pub fd: i32,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events (includes error conditions regardless of the
    /// request).
    pub revents: i16,
}

/// Readable (or peer closed — a subsequent read returns 0).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the descriptor.
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Descriptor is not open.
pub const POLLNVAL: i16 = 0x020;

/// Kernel `struct timespec` for the `ppoll` timeout.
#[repr(C)]
struct Timespec {
    sec: i64,
    nsec: i64,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    /// Whether this build carries a live syscall shim.
    pub const SUPPORTED: bool = true;

    #[cfg(target_arch = "x86_64")]
    pub const NR_PPOLL: usize = 271;
    #[cfg(target_arch = "x86_64")]
    pub const NR_SCHED_SETAFFINITY: usize = 203;

    #[cfg(target_arch = "aarch64")]
    pub const NR_PPOLL: usize = 73;
    #[cfg(target_arch = "aarch64")]
    pub const NR_SCHED_SETAFFINITY: usize = 122;

    /// Five-argument raw syscall.
    ///
    /// # Safety
    ///
    /// The caller must uphold the invariants of the specific syscall:
    /// pointers must be valid for the kernel's reads/writes and lengths
    /// must match the pointed-to buffers.
    #[cfg(target_arch = "x86_64")]
    pub unsafe fn syscall5(
        nr: usize,
        a0: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a0,
                in("rsi") a1,
                in("rdx") a2,
                in("r10") a3,
                in("r8") a4,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// Five-argument raw syscall.
    ///
    /// # Safety
    ///
    /// As the x86_64 variant: pointer/length arguments must be valid for
    /// the specific syscall being made.
    #[cfg(target_arch = "aarch64")]
    pub unsafe fn syscall5(
        nr: usize,
        a0: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") a0 => ret,
                in("x1") a1,
                in("x2") a2,
                in("x3") a3,
                in("x4") a4,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    /// Whether this build carries a live syscall shim.
    pub const SUPPORTED: bool = false;
    pub const NR_PPOLL: usize = 0;
    pub const NR_SCHED_SETAFFINITY: usize = 0;

    /// Stub that reports `ENOSYS`; never actually traps.
    ///
    /// # Safety
    ///
    /// Always safe — it performs no system call.
    pub unsafe fn syscall5(
        _nr: usize,
        _a0: usize,
        _a1: usize,
        _a2: usize,
        _a3: usize,
        _a4: usize,
    ) -> isize {
        -38 // -ENOSYS
    }
}

/// Whether the raw-syscall shim is live on this target. `false` means
/// [`ppoll`] always fails and [`sched_setaffinity`] is a no-op, and
/// higher layers should use their portable fallback paths.
pub const SUPPORTED: bool = imp::SUPPORTED;

const EINTR: isize = -4;

/// Level-triggered poll over `fds`, waiting at most `timeout` (`None`
/// blocks indefinitely). Returns the number of descriptors with non-zero
/// `revents`. `EINTR` is retried internally.
///
/// # Errors
///
/// The raw `-errno` as an [`io::Error`]; `ErrorKind::Unsupported` on
/// targets without the shim.
pub fn ppoll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    if !SUPPORTED {
        return Err(io::Error::from(io::ErrorKind::Unsupported));
    }
    let ts_storage;
    let ts_ptr = match timeout {
        Some(d) => {
            ts_storage = Timespec {
                sec: d.as_secs().min(i64::MAX as u64) as i64,
                nsec: i64::from(d.subsec_nanos()),
            };
            &ts_storage as *const Timespec as usize
        }
        None => 0,
    };
    loop {
        // SAFETY: `fds` is a valid mutable slice of ABI-correct pollfd
        // entries with matching length; the timespec (when present) lives
        // across the call; the signal mask is null so its size is unused.
        let r = unsafe {
            imp::syscall5(
                imp::NR_PPOLL,
                fds.as_mut_ptr() as usize,
                fds.len(),
                ts_ptr,
                0,
                8,
            )
        };
        if r >= 0 {
            return Ok(r as usize);
        }
        if r == EINTR {
            continue;
        }
        return Err(io::Error::from_raw_os_error(-r as i32));
    }
}

/// Pins the calling thread to the given CPU set. Returns `true` on
/// success; `false` covers both syscall failure and unsupported targets,
/// so callers can treat pinning as best-effort.
pub fn sched_setaffinity(cpus: &[usize]) -> bool {
    if !SUPPORTED || cpus.is_empty() {
        return false;
    }
    // 1024-CPU mask, the kernel's customary sizing.
    let mut mask = [0u64; 16];
    let mut any = false;
    for &c in cpus {
        if c < 1024 {
            mask[c / 64] |= 1 << (c % 64);
            any = true;
        }
    }
    if !any {
        return false;
    }
    // SAFETY: pid 0 targets the calling thread; the mask pointer/length
    // pair describes a live, correctly sized buffer the kernel only reads.
    let r = unsafe {
        imp::syscall5(
            imp::NR_SCHED_SETAFFINITY,
            0,
            std::mem::size_of_val(&mask),
            mask.as_ptr() as usize,
            0,
            0,
        )
    };
    r == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppoll_times_out_on_silence() {
        if !SUPPORTED {
            return;
        }
        // No fds: pure timeout — must return 0 promptly, not hang.
        let start = std::time::Instant::now();
        let n = ppoll(&mut [], Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn ppoll_reports_readable_socket() {
        if !SUPPORTED {
            return;
        }
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();

        // Nothing written yet: readable must not fire, writable must.
        let mut fds = [PollFd {
            fd: rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let n = ppoll(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "unexpected readiness: {:#x}", fds[0].revents);

        tx.write_all(b"x").unwrap();
        let mut fds = [PollFd {
            fd: rx.as_raw_fd(),
            events: POLLIN | POLLOUT,
            revents: 0,
        }];
        let n = ppoll(&mut fds, Some(Duration::from_millis(500))).unwrap();
        assert_eq!(n, 1);
        assert_ne!(
            fds[0].revents & POLLIN,
            0,
            "byte in flight must be readable"
        );
    }

    #[test]
    fn affinity_pin_is_best_effort() {
        // Must never panic; on a live shim, pinning to CPU 0 (always
        // online) should succeed.
        let ok = sched_setaffinity(&[0]);
        if SUPPORTED {
            assert!(ok, "pinning to cpu0 failed on a supported target");
        } else {
            assert!(!ok);
        }
        assert!(!sched_setaffinity(&[]));
    }
}
