//! Host CPU topology probing and worker placement.
//!
//! Reads the Linux sysfs topology tree (`/sys/devices/system/cpu`) to
//! learn which logical CPUs share a physical core, so worker groups can
//! be spread **cores-first**: one worker per physical core before any SMT
//! sibling is doubled up (two SC simulation workers sharing a core's
//! execution ports is strictly worse than one per core). On hosts without
//! sysfs the probe degrades to `available_parallelism` with every logical
//! CPU treated as its own core, flagged via [`Topology::source`] so
//! benchmark artifacts stay honest about what was actually detected.
//!
//! Like `HostFingerprint` in acoustic-simfunc, the blob serializes to a
//! small JSON object with a stable FNV-1a id, and is embedded in
//! `results/BENCH_*.json` files so cross-host numbers are comparable.

use std::path::Path;

/// One logical CPU and its physical placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    /// Logical CPU index (the kernel's `cpuN`).
    pub cpu: usize,
    /// Core id within the package.
    pub core: usize,
    /// Physical package (socket) id.
    pub package: usize,
}

/// Detected host CPU layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Online logical CPUs in kernel order.
    pub cpus: Vec<Cpu>,
    /// Distinct `(package, core)` pairs.
    pub physical_cores: usize,
    /// Whether any physical core carries more than one logical CPU.
    pub smt: bool,
    /// `"sysfs"` for a real probe, `"fallback"` when sysfs was absent and
    /// the layout is an `available_parallelism` guess.
    pub source: &'static str,
}

impl Topology {
    /// Probes the host: sysfs when available, fallback otherwise.
    pub fn detect() -> Self {
        Self::from_sysfs(Path::new("/sys/devices/system/cpu")).unwrap_or_else(Self::fallback)
    }

    /// The no-sysfs guess: N logical CPUs, each its own core.
    pub fn fallback() -> Self {
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        Topology {
            cpus: (0..n)
                .map(|cpu| Cpu {
                    cpu,
                    core: cpu,
                    package: 0,
                })
                .collect(),
            physical_cores: n,
            smt: false,
            source: "fallback",
        }
    }

    /// Parses a sysfs cpu tree rooted at `root`. Public so tests can feed
    /// a synthetic tree; returns `None` if the tree is missing or empty.
    pub fn from_sysfs(root: &Path) -> Option<Self> {
        let online = std::fs::read_to_string(root.join("online")).ok()?;
        let ids = parse_cpu_list(online.trim())?;
        if ids.is_empty() {
            return None;
        }
        let mut cpus = Vec::with_capacity(ids.len());
        for cpu in ids {
            let topo = root.join(format!("cpu{cpu}/topology"));
            let read = |name: &str| -> Option<usize> {
                std::fs::read_to_string(topo.join(name))
                    .ok()?
                    .trim()
                    .parse()
                    .ok()
            };
            // Some minimal containers expose `online` but no per-cpu
            // topology; treat each such CPU as its own core rather than
            // failing the whole probe.
            let core = read("core_id").unwrap_or(cpu);
            let package = read("physical_package_id").unwrap_or(0);
            cpus.push(Cpu { cpu, core, package });
        }
        let mut pairs: Vec<(usize, usize)> = cpus.iter().map(|c| (c.package, c.core)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let physical_cores = pairs.len();
        Some(Topology {
            smt: physical_cores < cpus.len(),
            physical_cores,
            cpus,
            source: "sysfs",
        })
    }

    /// Logical CPU count.
    pub fn logical_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// CPU ids in pinning order: the first sibling of every physical core
    /// (in CPU order), then second siblings, and so on. Worker `i` pins to
    /// `pin_order()[i % len]`, so workers fill physical cores before any
    /// SMT sibling is reused.
    pub fn pin_order(&self) -> Vec<usize> {
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let mut rounds: Vec<Vec<usize>> = Vec::new();
        for c in &self.cpus {
            let key = (c.package, c.core);
            let round = seen.iter().filter(|&&k| k == key).count();
            seen.push(key);
            if rounds.len() <= round {
                rounds.push(Vec::new());
            }
            rounds[round].push(c.cpu);
        }
        rounds.into_iter().flatten().collect()
    }

    /// Pins the calling thread to one CPU; best-effort (`false` when the
    /// affinity syscall is unavailable or refused).
    pub fn pin_current_thread(cpu: usize) -> bool {
        crate::sys::sched_setaffinity(&[cpu])
    }

    /// JSON object for the shared `results/BENCH_*.json` schema.
    pub fn json(&self) -> String {
        format!(
            "{{\"logical_cpus\": {}, \"physical_cores\": {}, \"smt\": {}, \"source\": \"{}\", \"pin_order\": [{}]}}",
            self.logical_cpus(),
            self.physical_cores,
            self.smt,
            self.source,
            self.pin_order()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }

    /// Stable hash of the serialized form (FNV-1a, as `HostFingerprint`).
    pub fn id(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.json().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Parses the kernel's cpu list syntax (`"0-3,5,8-9"`) into sorted ids.
fn parse_cpu_list(s: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    if s.is_empty() {
        return Some(out);
    }
    for part in s.split(',') {
        let part = part.trim();
        if let Some((lo, hi)) = part.split_once('-') {
            let lo: usize = lo.trim().parse().ok()?;
            let hi: usize = hi.trim().parse().ok()?;
            if hi < lo {
                return None;
            }
            out.extend(lo..=hi);
        } else {
            out.push(part.parse().ok()?);
        }
    }
    out.sort_unstable();
    out.dedup();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_tree(dir: &Path, cpus: &[(usize, usize, usize)]) {
        // cpus: (cpu, core, package)
        let list = cpus
            .iter()
            .map(|(c, _, _)| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join("online"), list).unwrap();
        for &(cpu, core, package) in cpus {
            let topo = dir.join(format!("cpu{cpu}/topology"));
            std::fs::create_dir_all(&topo).unwrap();
            std::fs::write(topo.join("core_id"), core.to_string()).unwrap();
            std::fs::write(topo.join("physical_package_id"), package.to_string()).unwrap();
        }
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("acoustic-net-topo-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn parses_cpu_list_syntax() {
        assert_eq!(parse_cpu_list("0-3,5").unwrap(), vec![0, 1, 2, 3, 5]);
        assert_eq!(parse_cpu_list("7").unwrap(), vec![7]);
        assert_eq!(parse_cpu_list("0-1,1-2").unwrap(), vec![0, 1, 2]);
        assert!(parse_cpu_list("3-1").is_none());
        assert!(parse_cpu_list("x").is_none());
    }

    #[test]
    fn smt_host_orders_cores_first() {
        // 2 physical cores × 2 SMT threads, kernel-typical sibling
        // numbering: cpu0/cpu2 share core 0, cpu1/cpu3 share core 1.
        let dir = tmpdir("smt");
        synthetic_tree(&dir, &[(0, 0, 0), (1, 1, 0), (2, 0, 0), (3, 1, 0)]);
        let t = Topology::from_sysfs(&dir).unwrap();
        assert_eq!(t.logical_cpus(), 4);
        assert_eq!(t.physical_cores, 2);
        assert!(t.smt);
        assert_eq!(t.source, "sysfs");
        // First one thread of each core, then the siblings.
        assert_eq!(t.pin_order(), vec![0, 1, 2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adjacent_sibling_numbering_interleaves() {
        // The other common numbering: cpu0/cpu1 share core 0.
        let dir = tmpdir("adjacent");
        synthetic_tree(&dir, &[(0, 0, 0), (1, 0, 0), (2, 1, 0), (3, 1, 0)]);
        let t = Topology::from_sysfs(&dir).unwrap();
        assert_eq!(t.physical_cores, 2);
        assert!(t.smt);
        assert_eq!(
            t.pin_order(),
            vec![0, 2, 1, 3],
            "both physical cores must be used before any sibling"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_smt_host_is_identity_order() {
        let dir = tmpdir("flat");
        synthetic_tree(&dir, &[(0, 0, 0), (1, 1, 0), (2, 2, 0)]);
        let t = Topology::from_sysfs(&dir).unwrap();
        assert!(!t.smt);
        assert_eq!(t.pin_order(), vec![0, 1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_tree_falls_back() {
        assert!(Topology::from_sysfs(Path::new("/nonexistent/cpu/tree")).is_none());
        let t = Topology::fallback();
        assert!(t.logical_cpus() >= 1);
        assert_eq!(t.source, "fallback");
        assert_eq!(t.physical_cores, t.logical_cpus());
    }

    #[test]
    fn detect_yields_consistent_blob() {
        let t = Topology::detect();
        assert!(t.logical_cpus() >= 1);
        assert!(t.physical_cores >= 1);
        assert!(t.physical_cores <= t.logical_cpus());
        assert_eq!(t.pin_order().len(), t.logical_cpus());
        let json = t.json();
        assert!(json.contains("\"logical_cpus\""));
        assert!(json.contains("\"pin_order\""));
        // Stable id: same blob, same hash.
        assert_eq!(t.id(), t.id());
        assert_ne!(t.id(), 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let t = Topology {
            cpus: vec![
                Cpu {
                    cpu: 0,
                    core: 0,
                    package: 0,
                },
                Cpu {
                    cpu: 1,
                    core: 0,
                    package: 0,
                },
            ],
            physical_cores: 1,
            smt: true,
            source: "sysfs",
        };
        assert_eq!(
            t.json(),
            "{\"logical_cpus\": 2, \"physical_cores\": 1, \"smt\": true, \"source\": \"sysfs\", \"pin_order\": [0, 1]}"
        );
    }
}
