//! Cross-thread wakeup for a poller blocked in `ppoll`.
//!
//! Std-only portability rules out `eventfd`/self-pipes, so the waker is a
//! connected loopback TCP pair: the reactor registers the receive side
//! with its [`crate::Poller`] under a reserved token, and any thread can
//! call [`Waker::wake`] to make that side readable. Wakeups coalesce
//! naturally — the reactor drains whatever bytes have accumulated in one
//! read and treats the batch as a single "check your inboxes" signal.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};

/// A wakeup channel between worker threads and one reactor thread.
///
/// `wake()` is callable from any thread through a shared reference
/// (`Arc<Waker>`); `drain()` must only be called by the reactor that
/// registered [`Waker::fd`].
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
    rx: TcpStream,
    // Collapses wake bursts into at most one in-flight byte, so a worker
    // storm cannot fill the loopback send buffer.
    pending: AtomicBool,
}

impl Waker {
    /// Builds the loopback pair. The listener is transient: it accepts
    /// exactly one connection and is verified against the connector's
    /// local address so an unrelated process racing to the port cannot be
    /// mistaken for our own peer.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; fails if the accepted peer is not ours.
    pub fn new() -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, peer) = listener.accept()?;
        if peer != tx.local_addr()? {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "waker accept raced with a foreign connection",
            ));
        }
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        Ok(Self {
            tx,
            rx,
            pending: AtomicBool::new(false),
        })
    }

    /// The fd the reactor should register for read interest.
    pub fn fd(&self) -> i32 {
        self.rx.as_raw_fd()
    }

    /// Makes [`Waker::fd`] readable. Callable from any thread; lossy
    /// coalescing (a burst of wakes may deliver one byte) and failure-
    /// tolerant (a full send buffer already implies a pending wakeup).
    pub fn wake(&self) {
        if self.pending.swap(true, Ordering::AcqRel) {
            return; // a wakeup byte is already in flight
        }
        // `impl Write for &TcpStream` — no &mut needed through the Arc.
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Consumes any queued wakeup bytes. Reactor-side only, after the
    /// poller reports [`Waker::fd`] readable.
    pub fn drain(&self) {
        // Clear before reading: a wake() racing with this drain either
        // lands its byte (next poll tick sees it) or sees pending=true
        // set again by itself — never a lost wakeup.
        self.pending.store(false, Ordering::Release);
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.rx).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::{Interest, Poller};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wake_makes_fd_readable_across_threads() {
        if !Poller::supported() {
            return;
        }
        let waker = Arc::new(Waker::new().unwrap());
        let mut p = Poller::new();
        p.register(0, waker.fd(), Interest::Read);
        let mut events = Vec::new();

        // Quiet until woken.
        let n = p
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || w.wake());
        let n = p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        t.join().unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable);

        // Drain clears the signal; the next wait times out again.
        waker.drain();
        let n = p
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn wake_bursts_coalesce_and_rearm() {
        if !Poller::supported() {
            return;
        }
        let waker = Waker::new().unwrap();
        for _ in 0..10_000 {
            waker.wake(); // must not block or error out on a full buffer
        }
        waker.drain();
        // Re-armed: a fresh wake after drain is still delivered.
        waker.wake();
        let mut p = Poller::new();
        p.register(0, waker.fd(), Interest::Read);
        let mut events = Vec::new();
        let n = p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
    }
}
