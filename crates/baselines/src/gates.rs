//! A small 28 nm gate-equivalent cost model shared by the MAC-area
//! comparisons (§II-B compactness and §III-A density claims).

/// Routed area of one NAND2-equivalent gate at 28 nm, µm².
pub const GATE_AREA_UM2: f64 = 0.6;

/// Gate-equivalents of a full adder.
pub const FULL_ADDER_GATES: f64 = 7.0;

/// Gate-equivalents of one flip-flop.
pub const FLOP_GATES: f64 = 4.5;

/// Gate count of a `k`-input OR-based SC MAC: `k` AND multipliers plus a
/// `k−1`-gate OR tree and an output pipeline flop.
pub fn or_mac_gates(k: usize) -> f64 {
    k as f64 + (k.saturating_sub(1)) as f64 + FLOP_GATES
}

/// Gate count of a `k`-input MUX-tree SC adder (plus the AND multipliers):
/// `k−1` 2:1 muxes at ~3 gates each, plus the select LFSR share.
pub fn mux_mac_gates(k: usize) -> f64 {
    k as f64 + 3.0 * k.saturating_sub(1) as f64 + 2.0 * FLOP_GATES
}

/// Gate count of a `k`-input accumulative parallel counter MAC
/// (SC-DCNN \[12\] style): AND multipliers, a carry-save adder tree of ~`k−1`
/// full adders, and a wide accumulator register.
pub fn apc_mac_gates(k: usize) -> f64 {
    let accumulator_bits = (k as f64).log2().ceil() + 8.0;
    k as f64
        + (k.saturating_sub(1)) as f64 * FULL_ADDER_GATES
        + accumulator_bits * (FLOP_GATES + 2.0)
}

/// Gate count of the per-product binary-conversion scheme of \[21\]: every
/// product stream gets its own small counter (8-bit: 8 flops + increment
/// logic), followed by a binary adder tree.
pub fn binary_convert_mac_gates(k: usize) -> f64 {
    let per_product_counter = 8.0 * (FLOP_GATES + 0.5);
    let adder_tree = (k.saturating_sub(1)) as f64 * 8.0 * 0.9;
    k as f64 + k as f64 * per_product_counter + adder_tree
}

/// Gate count of an 8×8-bit fixed-point MAC (array multiplier + 16-bit
/// accumulate + pipeline), the conventional-binary unit of §III-A.
pub fn fixed8_mac_gates() -> f64 {
    // 64 AND partial products + ~56 FA reduction + 16-bit CPA + registers.
    64.0 + 56.0 * FULL_ADDER_GATES + 16.0 * 2.5 + 24.0 * FLOP_GATES
}

/// Amortised per-lane overhead of the surrounding SC machinery (SNG shares,
/// 8-bit value buffers, output-counter share), in gate-equivalents.
/// Calibrated from the LP floorplan: (MAC array + SNGs + buffers +
/// counters) / total lanes ≈ 12 gates per lane.
pub const SC_LANE_OVERHEAD_GATES: f64 = 10.0;

/// Effective gate cost of one SC multiplier lane *including* its amortised
/// share of SNGs, buffers, and counters — the number the §III-A "47×
/// smaller than 8-bit fixed point" density claim refers to.
pub fn sc_lane_gates() -> f64 {
    or_mac_gates(96) / 96.0 + SC_LANE_OVERHEAD_GATES
}

/// µm² area from a gate count.
pub fn area_um2(gates: f64) -> f64 {
    gates * GATE_AREA_UM2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_mac_is_about_4x_smaller_than_apc_at_128() {
        // §II-B: OR accumulation is "4.2x [more compact] than [12]" for a
        // 128-wide accumulate.
        let ratio = apc_mac_gates(128) / or_mac_gates(128);
        assert!((3.0..5.5).contains(&ratio), "APC/OR ratio {ratio}");
    }

    #[test]
    fn or_mac_is_about_24x_smaller_than_binary_conversion_at_128() {
        // §II-B: "23.8X than [21] for a 128 wide accumulate".
        let ratio = binary_convert_mac_gates(128) / or_mac_gates(128);
        assert!((18.0..30.0).contains(&ratio), "convert/OR ratio {ratio}");
    }

    #[test]
    fn sc_lane_is_about_47x_denser_than_fixed8() {
        // §III-A: "SC MACs can be 47X smaller than 8-bit fixed-point MACs"
        // — lanes carry their amortised SNG/buffer/counter overhead.
        let ratio = fixed8_mac_gates() / sc_lane_gates();
        assert!((30.0..70.0).contains(&ratio), "density ratio {ratio}");
    }

    #[test]
    fn mux_tree_is_larger_than_or() {
        assert!(mux_mac_gates(128) > or_mac_gates(128));
    }

    #[test]
    fn gate_counts_grow_with_fanin() {
        for f in [
            or_mac_gates,
            mux_mac_gates,
            apc_mac_gates,
            binary_convert_mac_gates,
        ] {
            assert!(f(256) > f(64));
        }
    }

    #[test]
    fn area_conversion() {
        assert!((area_um2(100.0) - 60.0).abs() < 1e-9);
    }
}
