//! MUX-tree stochastic accumulation — the classic SC adder ACOUSTIC
//! replaces with OR (§II-B).
//!
//! A balanced tree of 2:1 MUXes with 50 % random selects computes
//! `Σvᵢ / k`: unbiased, but the `1/k` scaling buries small sums under the
//! representation noise, which is why wide MUX accumulation loses badly to
//! OR in absolute error (the paper's Monte-Carlo finds ~8× at 2304-wide).

use acoustic_core::{Bitstream, CoreError, Lfsr};

/// Accumulates `streams` through a balanced MUX tree with LFSR-driven 50 %
/// selects (a fresh select stream per tree level, seeded from
/// `select_seed`). The decoded output approximates `mean(values)`; multiply
/// by `k` to compare against an unscaled sum.
///
/// # Errors
///
/// * [`CoreError::EmptyOperands`] if `streams` is empty.
/// * [`CoreError::LengthMismatch`] if the streams differ in length.
///
/// # Examples
///
/// ```
/// use acoustic_baselines::mux_tree::mux_tree_accumulate;
/// use acoustic_core::Bitstream;
///
/// # fn main() -> Result<(), acoustic_core::CoreError> {
/// let streams = vec![Bitstream::ones(512), Bitstream::zeros(512)];
/// let out = mux_tree_accumulate(&streams, 0xACE1)?;
/// assert!((out.value() - 0.5).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn mux_tree_accumulate(
    streams: &[Bitstream],
    select_seed: u32,
) -> Result<Bitstream, CoreError> {
    if streams.is_empty() {
        return Err(CoreError::EmptyOperands);
    }
    let len = streams[0].len();
    for s in streams {
        if s.len() != len {
            return Err(CoreError::LengthMismatch {
                left: len,
                right: s.len(),
            });
        }
    }
    let mut level: Vec<Bitstream> = streams.to_vec();
    let mut seed = select_seed.max(1);
    while level.len() > 1 {
        let mut lfsr = Lfsr::maximal(16, seed & 0xFFFF)?;
        // One 50% select stream per level, shared by the level's muxes —
        // hardware shares select RNGs the same way.
        let mut select = Bitstream::zeros(len);
        for bit in 0..len {
            if lfsr.next_value() & 1 == 1 {
                select.set(bit, true);
            }
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut iter = level.chunks(2);
        for pair in &mut iter {
            match pair {
                [a, b] => {
                    let sel_a = a.and(&select)?;
                    let sel_b = b.and(&select.not())?;
                    next.push(sel_a.or(&sel_b)?);
                }
                [a] => next.push(a.clone()),
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            }
        }
        level = next;
        seed = seed.wrapping_mul(0x9E37).wrapping_add(0x1D2C) & 0xFFFF;
        if seed == 0 {
            seed = 0x5EED;
        }
    }
    Ok(level.pop().expect("non-empty input leaves one stream"))
}

/// The scale factor of a `k`-input MUX tree (output encodes `Σ/scale`).
///
/// A balanced tree of depth `ceil(log2 k)` scales by `2^depth` (padding
/// odd levels passes values through unscaled, so this is an upper bound
/// that is exact for power-of-two fan-in).
pub fn mux_tree_scale(k: usize) -> f64 {
    if k <= 1 {
        1.0
    } else {
        2f64.powi((k as f64).log2().ceil() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acoustic_core::SngBank;

    #[test]
    fn two_input_mux_halves() {
        let a = Bitstream::ones(4096);
        let b = Bitstream::zeros(4096);
        let out = mux_tree_accumulate(&[a, b], 0xACE1).unwrap();
        assert!((out.value() - 0.5).abs() < 0.05, "{}", out.value());
    }

    #[test]
    fn four_input_tree_averages() {
        let n = 8192;
        let values = [0.8, 0.4, 0.6, 0.2];
        let streams: Vec<Bitstream> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                SngBank::new(16, 0x1111 * (i as u32 + 1))
                    .unwrap()
                    .generate_many(&[v], n)
                    .unwrap()
                    .pop()
                    .unwrap()
            })
            .collect();
        let out = mux_tree_accumulate(&streams, 0x7777).unwrap();
        assert!((out.value() - 0.5).abs() < 0.05, "{}", out.value());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(mux_tree_accumulate(&[], 1).is_err());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(mux_tree_accumulate(&[Bitstream::zeros(8), Bitstream::zeros(16)], 1).is_err());
    }

    #[test]
    fn single_input_is_identity() {
        let a = Bitstream::from_bits(&[true, false, true, true]);
        assert_eq!(mux_tree_accumulate(std::slice::from_ref(&a), 1).unwrap(), a);
    }

    #[test]
    fn scale_factors() {
        assert_eq!(mux_tree_scale(1), 1.0);
        assert_eq!(mux_tree_scale(2), 2.0);
        assert_eq!(mux_tree_scale(4), 4.0);
        assert_eq!(mux_tree_scale(2304), 4096.0);
    }

    #[test]
    fn wide_mux_loses_small_sums() {
        // 64 inputs of 0.05: true mean 0.05; but each decoded output bit
        // carries 1/64 of the sum=3.2, i.e. the scaled output 0.05 is fine —
        // the killer is *recovering* the sum: multiply back by 64 amplifies
        // the stream noise 64x.
        let n = 1024;
        let streams: Vec<Bitstream> = (0..64)
            .map(|i| {
                SngBank::new(16, 0x100 + i as u32 * 7 + 1)
                    .unwrap()
                    .generate_many(&[0.05], n)
                    .unwrap()
                    .pop()
                    .unwrap()
            })
            .collect();
        let out = mux_tree_accumulate(&streams, 0xBEEF).unwrap();
        let recovered_sum = out.value() * 64.0;
        let err = (recovered_sum - 3.2f64).abs();
        // The amplified error is large relative to a direct OR/counter sum.
        assert!(err < 3.2, "sanity: still in range ({err})");
        assert!(
            err > 0.005,
            "MUX recovery should show amplified noise ({err})"
        );
    }
}
