//! Conv-RAM \[36\] — the analog in-SRAM comparator of Table IV.
//!
//! An energy-efficient SRAM with embedded analog convolution, 6-bit
//! activations and binarized weights. Anchored to the published numbers
//! scaled to 28 nm, as in the paper.

use crate::BaselineEstimate;

/// Die area at 28 nm, mm² (Table IV).
pub const AREA_MM2: f64 = 0.02;
/// Power, W (Table IV: 0.016 mW).
pub const POWER_W: f64 = 0.016e-3;
/// Clock, Hz (Table IV: 364 MHz).
pub const CLOCK_HZ: f64 = 364e6;
/// Precision: activations/weights.
pub const PRECISION: &str = "6b/1b";

/// Published LeNet-5 conv-layer performance (Table IV): 15,200 Fr/s,
/// 40 MFr/J.
pub fn lenet5_conv() -> BaselineEstimate {
    BaselineEstimate {
        accelerator: "Conv-RAM".to_string(),
        network: "LeNet-5 (conv only)".to_string(),
        frames_per_s: 15_200.0,
        frames_per_j: 40.0e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_table4() {
        let e = lenet5_conv();
        assert_eq!(e.frames_per_s, 15_200.0);
        assert_eq!(e.frames_per_j, 40.0e6);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // published anchor values
    fn conv_ram_is_tiny_but_slow_compared_to_paper_ulp() {
        // Table IV shape: ACOUSTIC ULP has 8.2x the throughput at similar
        // energy efficiency.
        let e = lenet5_conv();
        assert!(AREA_MM2 < 0.1);
        assert!(e.frames_per_s < 125_000.0);
    }
}
