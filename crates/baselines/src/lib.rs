//! Baseline accelerators and SC-accumulation comparators for the ACOUSTIC
//! evaluation (§IV).
//!
//! Two kinds of baselines appear in the paper:
//!
//! * **First-principles models** — [`eyeriss`] (row-stationary fixed-point
//!   spatial accelerator, modelled per-network from layer shapes the way
//!   the paper uses the TETRIS simulator), and the stochastic accumulation
//!   alternatives [`mux_tree`] (MUX scaled adder trees) and [`apc`]
//!   (accumulative parallel counters of SC-DCNN \[12\]) plus the per-product
//!   binary-conversion scheme of \[21\], all with a shared gate-area model
//!   ([`gates`]).
//! * **Published-anchor models** — [`scope`], [`mdl_cnn`] and [`conv_ram`],
//!   reproduced from their publications and scaled to 28 nm, exactly as the
//!   paper does ("SCOPE numbers are reproduced from [14, 35] and scaled to
//!   28nm").

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apc;
pub mod bipolar_mac;
pub mod conv_ram;
pub mod eyeriss;
pub mod gates;
pub mod mdl_cnn;
pub mod mux_tree;
pub mod scope;

/// Throughput/efficiency estimate of a baseline on one network.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEstimate {
    /// Accelerator name.
    pub accelerator: String,
    /// Network name.
    pub network: String,
    /// Inference throughput, frames per second.
    pub frames_per_s: f64,
    /// Energy efficiency, frames per joule (accelerator-side energy).
    pub frames_per_j: f64,
}
