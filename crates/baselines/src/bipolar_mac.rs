//! A conventional bipolar SC MAC — the representation ACOUSTIC's
//! split-unipolar scheme replaces (§II-A).
//!
//! Bipolar coding maps `v ∈ [−1, 1]` to a stream of ones-probability
//! `(v+1)/2`; multiplication is an XNOR and accumulation a MUX tree. This
//! is what most prior SC accelerators use (the paper cites [11, 12, 15]);
//! comparing its MAC-level error against the split-unipolar OR datapath at
//! the *same total stream length* quantifies the §II-A "2×" claim where it
//! actually matters.

use acoustic_core::gates::xnor_mul_bipolar;
use acoustic_core::{Bitstream, CoreError, Lfsr, Sng};

use crate::mux_tree::{mux_tree_accumulate, mux_tree_scale};

/// Generates a bipolar stream for `v ∈ [−1, 1]`.
///
/// # Errors
///
/// Returns [`CoreError::ValueOutOfRange`] if `v ∉ [−1, 1]`.
pub fn bipolar_stream(v: f64, n: usize, seed: u32) -> Result<Bitstream, CoreError> {
    if !v.is_finite() || !(-1.0..=1.0).contains(&v) {
        return Err(CoreError::ValueOutOfRange {
            value: v,
            min: -1.0,
            max: 1.0,
        });
    }
    let mut sng = Sng::new(Lfsr::maximal(16, seed.max(1))?, 16);
    sng.generate((v + 1.0) / 2.0, n)
}

/// Result of one bipolar MAC execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BipolarMacOutput {
    /// Decoded dot-product value (MUX scale multiplied back out).
    pub value: f64,
    /// Stream length used.
    pub n: usize,
}

/// A bipolar XNOR/MUX MAC over `n`-bit streams.
///
/// # Examples
///
/// ```
/// use acoustic_baselines::bipolar_mac::BipolarMac;
///
/// # fn main() -> Result<(), acoustic_core::CoreError> {
/// let mac = BipolarMac::new(16384);
/// let out = mac.execute(&[0.5, 0.25], &[0.75, -0.5], 0xACE1, 0x1D2C)?;
/// assert!((out.value - 0.25).abs() < 0.2); // noisy — that's the point
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BipolarMac {
    n: usize,
}

impl BipolarMac {
    /// Creates a MAC with stream length `n` (bipolar needs no phases, so
    /// this is directly comparable to a *total* split-unipolar length `n`).
    pub fn new(n: usize) -> Self {
        BipolarMac { n }
    }

    /// Stream length.
    pub fn stream_len(&self) -> usize {
        self.n
    }

    /// Computes `Σ aᵢ·wᵢ` with XNOR products and a MUX accumulation tree.
    ///
    /// # Errors
    ///
    /// * [`CoreError::LengthMismatch`] if operand counts differ.
    /// * [`CoreError::EmptyOperands`] for empty inputs.
    /// * [`CoreError::ValueOutOfRange`] for values outside `[−1, 1]`.
    pub fn execute(
        &self,
        activations: &[f64],
        weights: &[f64],
        act_seed: u32,
        wgt_seed: u32,
    ) -> Result<BipolarMacOutput, CoreError> {
        if activations.len() != weights.len() {
            return Err(CoreError::LengthMismatch {
                left: activations.len(),
                right: weights.len(),
            });
        }
        if activations.is_empty() {
            return Err(CoreError::EmptyOperands);
        }
        let mut products = Vec::with_capacity(activations.len());
        for (i, (&a, &w)) in activations.iter().zip(weights).enumerate() {
            let sa = bipolar_stream(a, self.n, lane_seed(act_seed, i))?;
            let sw = bipolar_stream(w, self.n, lane_seed(wgt_seed, i))?;
            products.push(xnor_mul_bipolar(&sa, &sw)?);
        }
        let acc = mux_tree_accumulate(&products, act_seed ^ wgt_seed ^ 0x7777)?;
        let scale = mux_tree_scale(products.len());
        Ok(BipolarMacOutput {
            value: acc.bipolar_value() * scale,
            n: self.n,
        })
    }
}

fn lane_seed(base: u32, lane: usize) -> u32 {
    let s = base
        .wrapping_add((lane as u32).wrapping_mul(0x9E37))
        .wrapping_mul(0x2545_F491)
        & 0xFFFF;
    if s == 0 {
        0x5EED
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acoustic_core::SplitUnipolarMac;
    use acoustic_core::SplitWeight;

    #[test]
    fn bipolar_stream_encodes_signed_values() {
        let n = 16384;
        for &v in &[-0.8, -0.2, 0.0, 0.4, 1.0] {
            let s = bipolar_stream(v, n, 0xACE1).unwrap();
            assert!(
                (s.bipolar_value() - v).abs() < 0.05,
                "v={v} decoded {}",
                s.bipolar_value()
            );
        }
        assert!(bipolar_stream(1.5, 8, 1).is_err());
    }

    #[test]
    fn two_lane_mac_is_unbiased_but_noisy() {
        let mac = BipolarMac::new(16384);
        let out = mac
            .execute(&[0.5, 0.25], &[0.75, -0.5], 0xACE1, 0x1D2C)
            .unwrap();
        // ideal 0.25; bipolar at this length is within coarse tolerance.
        assert!((out.value - 0.25).abs() < 0.2, "{}", out.value);
    }

    #[test]
    fn split_unipolar_beats_bipolar_at_equal_length() {
        // The §II-A claim at MAC level: at the same total stream length,
        // the split-unipolar OR datapath has lower RMS error than the
        // bipolar XNOR/MUX datapath for small-magnitude dot products.
        let total_n = 256;
        let acts = [0.5, 0.25, 0.6, 0.3];
        let wgts = [0.3, -0.2, 0.15, -0.25];
        let ideal: f64 = acts.iter().zip(&wgts).map(|(a, w)| a * w).sum();

        let su_mac = SplitUnipolarMac::new(total_n / 2, 96);
        let sw: Vec<SplitWeight> = wgts
            .iter()
            .map(|&w| SplitWeight::from_real(w).unwrap())
            .collect();
        let bip_mac = BipolarMac::new(total_n);

        let (mut su_sq, mut bip_sq) = (0.0f64, 0.0f64);
        let trials = 60;
        for t in 0..trials {
            let s1 = 0x1000 + t * 131;
            let s2 = 0x2000 + t * 177;
            let su = su_mac.execute(&acts, &sw, s1, s2).unwrap();
            // Compare both against what each *should* compute; the OR MAC
            // targets its saturating expectation.
            let su_target = su_mac.expected_value(&acts, &sw).unwrap();
            su_sq += (su.value - su_target).powi(2);
            let bip = bip_mac.execute(&acts, &wgts, s1, s2).unwrap();
            bip_sq += (bip.value - ideal).powi(2);
        }
        let su_rms = (su_sq / f64::from(trials)).sqrt();
        let bip_rms = (bip_sq / f64::from(trials)).sqrt();
        assert!(
            su_rms < bip_rms,
            "split-unipolar RMS {su_rms} not below bipolar {bip_rms}"
        );
        // And by a comfortable margin (paper: ≥2x shorter streams ⇒
        // roughly √2+ lower error; MUX scaling makes it far worse here).
        assert!(bip_rms / su_rms > 2.0, "margin only {}", bip_rms / su_rms);
    }

    #[test]
    fn validation() {
        let mac = BipolarMac::new(64);
        assert!(mac.execute(&[0.5], &[0.1, 0.2], 1, 2).is_err());
        assert!(mac.execute(&[], &[], 1, 2).is_err());
        assert!(mac.execute(&[2.0], &[0.1], 1, 2).is_err());
    }
}
