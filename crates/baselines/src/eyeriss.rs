//! Eyeriss-style row-stationary fixed-point accelerator model — the
//! conventional-binary baseline of Table III.
//!
//! The paper models Eyeriss with the TETRIS simulator \[34\], at its original
//! 168-PE configuration and a 1024-PE scale-up, both at 28 nm and 8-bit
//! precision. Here: an analytic model — convolutions run at one MAC per PE
//! per cycle (the row-stationary dataflow keeps PEs near-fully utilised on
//! the large layers of Table III's networks), fully-connected layers are
//! bounded by weight bandwidth, and energy charges a calibrated
//! system-level energy per MAC (PE + NoC + buffer hierarchy).

use acoustic_nn::zoo::{LayerShape, NetworkShape};

use crate::BaselineEstimate;

/// System-level energy per 8-bit MAC (PE, NoC, scratchpads, SRAM), joules.
/// Calibrated against the published Eyeriss numbers scaled to 28 nm
/// (e.g. VGG-16 at 14.4 Fr/J ⇒ ≈4.5 pJ/MAC).
pub const SYSTEM_ENERGY_PER_MAC_J: f64 = 4.5e-12;

/// An Eyeriss-class accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EyerissConfig {
    /// Configuration name.
    pub name: String,
    /// Processing elements.
    pub pes: usize,
    /// Clock, Hz.
    pub clock_hz: f64,
    /// Die area, mm² (28 nm).
    pub area_mm2: f64,
    /// Peak power, W.
    pub power_w: f64,
    /// Weight-fetch bandwidth for memory-bound FC layers, bytes/s.
    pub dram_bw_bytes_per_s: f64,
}

impl EyerissConfig {
    /// The original 168-PE Eyeriss scaled to 28 nm / 8-bit (Table III
    /// "Base": 3.7 mm², 0.12 W, 200 MHz).
    pub fn base() -> Self {
        EyerissConfig {
            name: "Eyeriss base".to_string(),
            pes: 168,
            clock_hz: 200e6,
            area_mm2: 3.7,
            power_w: 0.12,
            dram_bw_bytes_per_s: 17.066e9,
        }
    }

    /// The 1024-PE scale-up (Table III "1k PEs": 15.2 mm², 0.45 W).
    pub fn scaled_1k() -> Self {
        EyerissConfig {
            name: "Eyeriss 1k PEs".to_string(),
            pes: 1024,
            clock_hz: 200e6,
            area_mm2: 15.2,
            power_w: 0.45,
            dram_bw_bytes_per_s: 17.066e9,
        }
    }

    /// Peak MAC throughput, MACs per second.
    pub fn peak_macs_per_s(&self) -> f64 {
        self.pes as f64 * self.clock_hz
    }

    /// Estimates latency and energy on a network.
    ///
    /// Convolutions are compute-bound at one MAC/PE/cycle; FC layers are
    /// the slower of compute and weight streaming.
    pub fn estimate(&self, net: &NetworkShape) -> BaselineEstimate {
        let mut seconds = 0.0;
        for layer in net.layers() {
            let macs = layer.macs() as f64;
            let compute_s = macs / self.peak_macs_per_s();
            let time = if layer.is_conv() {
                compute_s
            } else {
                let weight_s = layer.weight_count() as f64 / self.dram_bw_bytes_per_s;
                compute_s.max(weight_s)
            };
            seconds += time;
        }
        let energy_j = net.total_macs() as f64 * SYSTEM_ENERGY_PER_MAC_J;
        BaselineEstimate {
            accelerator: self.name.clone(),
            network: net.name().to_string(),
            frames_per_s: 1.0 / seconds,
            frames_per_j: 1.0 / energy_j,
        }
    }

    /// Per-layer latency in seconds (exposed for ablation experiments).
    pub fn layer_seconds(&self, layer: &LayerShape) -> f64 {
        let compute_s = layer.macs() as f64 / self.peak_macs_per_s();
        if layer.is_conv() {
            compute_s
        } else {
            compute_s.max(layer.weight_count() as f64 / self.dram_bw_bytes_per_s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acoustic_nn::zoo::{alexnet, resnet18, vgg16};

    #[test]
    fn vgg_base_matches_published_numbers() {
        // Paper Table III: Eyeriss base on VGG-16 = 1.8 Fr/s, 14.4 Fr/J.
        let e = EyerissConfig::base().estimate(&vgg16());
        assert!((1.0..4.0).contains(&e.frames_per_s), "{}", e.frames_per_s);
        assert!((8.0..25.0).contains(&e.frames_per_j), "{}", e.frames_per_j);
    }

    #[test]
    fn alexnet_base_in_ballpark() {
        // Paper: 41.1 Fr/s, 306.9 Fr/J (grouped AlexNet; ours is ungrouped,
        // accept 2x).
        let e = EyerissConfig::base().estimate(&alexnet());
        assert!((15.0..90.0).contains(&e.frames_per_s), "{}", e.frames_per_s);
        assert!(
            (120.0..650.0).contains(&e.frames_per_j),
            "{}",
            e.frames_per_j
        );
    }

    #[test]
    fn scaling_up_pes_speeds_up_convs() {
        let base = EyerissConfig::base().estimate(&resnet18());
        let big = EyerissConfig::scaled_1k().estimate(&resnet18());
        let speedup = big.frames_per_s / base.frames_per_s;
        // 1024/168 = 6.1x peak; ResNet is conv-dominated, so close to that.
        assert!((4.0..6.5).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn energy_per_frame_is_pe_count_independent() {
        // The per-MAC energy model makes Fr/J config-independent (matching
        // the paper's near-equal 306.9 vs 381.2).
        let base = EyerissConfig::base().estimate(&alexnet());
        let big = EyerissConfig::scaled_1k().estimate(&alexnet());
        assert!((base.frames_per_j / big.frames_per_j - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fc_layers_are_memory_bound() {
        let cfg = EyerissConfig::base();
        let fc = LayerShape::Fc {
            name: "fc".into(),
            in_features: 9216,
            out_features: 4096,
        };
        let t = cfg.layer_seconds(&fc);
        let weight_s = (9216.0 * 4096.0) / cfg.dram_bw_bytes_per_s;
        assert!((t - weight_s).abs() / weight_s < 1e-9);
    }
}
