//! SCOPE \[14\] — the state-of-the-art stochastic comparator of Table III.
//!
//! SCOPE is a DRAM-based in-situ accelerator that multiplies stochastic
//! streams in parallel (only multiplication is stochastic; accumulation is
//! binary). The ACOUSTIC paper reproduces its numbers from [14, 35] and
//! scales them to 28 nm; it reports only MNIST accuracy and AlexNet/VGG
//! performance, hence the `N/A` cells. This module anchors those published
//! values and derives per-MAC throughput/energy so the model can
//! interpolate to *other* conv-dominated networks if asked (clearly marked
//! as extrapolation).

use acoustic_nn::zoo::NetworkShape;

use crate::BaselineEstimate;

/// SCOPE die area at 28 nm, mm² (Table III).
pub const AREA_MM2: f64 = 273.0;
/// SCOPE clock, Hz (Table III).
pub const CLOCK_HZ: f64 = 125e6;

/// Published Table III anchors, 28 nm scaled: (network, Fr/s, Fr/J).
const ANCHORS: [(&str, f64, f64); 2] = [("AlexNet", 5771.7, 136.2), ("VGG-16", 755.9, 9.1)];

/// The Table III entry for a network, if SCOPE published one.
///
/// Returns `None` for networks the SCOPE paper did not evaluate (ResNet-18
/// and the CIFAR-10 CNN appear as `N/A` in Table III).
pub fn published(network: &str) -> Option<BaselineEstimate> {
    ANCHORS
        .iter()
        .find(|(n, _, _)| *n == network)
        .map(|&(n, fps, fpj)| BaselineEstimate {
            accelerator: "SCOPE".to_string(),
            network: n.to_string(),
            frames_per_s: fps,
            frames_per_j: fpj,
        })
}

/// Extrapolates SCOPE to an unpublished network from its per-MAC anchor
/// rates (mean of the AlexNet and VGG implied MAC rates). Use only for
/// qualitative comparisons; the paper prints `N/A` instead.
pub fn extrapolated(net: &NetworkShape) -> BaselineEstimate {
    // Implied aggregate rates from the anchors, using our shape-derived MAC
    // counts for the same networks.
    let alexnet_macs = 1.085e9;
    let vgg_macs = 15.36e9;
    let macs_per_s = (ANCHORS[0].1 * alexnet_macs + ANCHORS[1].1 * vgg_macs) / 2.0;
    let macs_per_j = (ANCHORS[0].2 * alexnet_macs + ANCHORS[1].2 * vgg_macs) / 2.0;
    let m = net.total_macs() as f64;
    BaselineEstimate {
        accelerator: "SCOPE (extrapolated)".to_string(),
        network: net.name().to_string(),
        frames_per_s: macs_per_s / m,
        frames_per_j: macs_per_j / m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acoustic_nn::zoo::{cifar10_cnn, resnet18};

    #[test]
    fn published_anchors_match_table3() {
        let a = published("AlexNet").unwrap();
        assert_eq!(a.frames_per_s, 5771.7);
        assert_eq!(a.frames_per_j, 136.2);
        let v = published("VGG-16").unwrap();
        assert_eq!(v.frames_per_s, 755.9);
        assert_eq!(v.frames_per_j, 9.1);
    }

    #[test]
    fn unpublished_networks_are_none() {
        assert!(published("ResNet-18").is_none());
        assert!(published("CIFAR-10 CNN").is_none());
    }

    #[test]
    fn extrapolation_scales_with_macs() {
        let r = extrapolated(&resnet18());
        let c = extrapolated(&cifar10_cnn());
        // CIFAR CNN has ~230x fewer MACs than ResNet-18.
        assert!(c.frames_per_s > 50.0 * r.frames_per_s);
        assert!(r.frames_per_s > 0.0 && r.frames_per_j > 0.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // published anchor values
    fn scope_is_area_hungry() {
        // §IV-D: "SCOPE require hundreds of mm2 of area, which makes it
        // unsuitable for edge inference."
        assert!(AREA_MM2 > 100.0);
    }
}
