//! Accumulative parallel counter (APC) accumulation — the SC-DCNN \[12\]
//! approach ACOUSTIC's OR tree is 4.2× smaller than (§II-B).
//!
//! An APC counts the ones across `k` parallel product streams every cycle
//! and adds the count to a binary accumulator: numerically *exact* (no
//! saturation, no scaling) but paid for with a full-adder tree per MAC.

use acoustic_core::{Bitstream, CoreError};

/// Exactly accumulates `streams`: the result is `Σᵢ popcount(streamᵢ)`,
/// i.e. the binary value a hardware APC reaches after the full stream.
///
/// # Errors
///
/// * [`CoreError::EmptyOperands`] if `streams` is empty.
/// * [`CoreError::LengthMismatch`] if the streams differ in length.
///
/// # Examples
///
/// ```
/// use acoustic_baselines::apc::apc_accumulate;
/// use acoustic_core::Bitstream;
///
/// # fn main() -> Result<(), acoustic_core::CoreError> {
/// let streams = vec![Bitstream::ones(8), Bitstream::ones(8)];
/// assert_eq!(apc_accumulate(&streams)?, 16);
/// # Ok(())
/// # }
/// ```
pub fn apc_accumulate(streams: &[Bitstream]) -> Result<u64, CoreError> {
    if streams.is_empty() {
        return Err(CoreError::EmptyOperands);
    }
    let len = streams[0].len();
    for s in streams {
        if s.len() != len {
            return Err(CoreError::LengthMismatch {
                left: len,
                right: s.len(),
            });
        }
    }
    Ok(streams.iter().map(Bitstream::count_ones).sum())
}

/// Decodes an APC count to a value given stream length `n`: `count / n`
/// (the APC output is an unscaled sum of the input values).
pub fn apc_value(count: u64, n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        count as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acoustic_core::SngBank;

    #[test]
    fn apc_is_exact_sum_of_popcounts() {
        let streams = vec![
            Bitstream::from_bits(&[true, true, false, false]),
            Bitstream::from_bits(&[true, false, true, false]),
            Bitstream::from_bits(&[false, false, false, true]),
        ];
        assert_eq!(apc_accumulate(&streams).unwrap(), 5);
    }

    #[test]
    fn apc_value_decodes_unscaled_sum() {
        // Three streams of value ~0.5 over n=4096: sum ≈ 1.5, unscaled.
        let n = 4096;
        let streams: Vec<Bitstream> = (0..3)
            .map(|i| {
                SngBank::new(16, 0x2222 + i * 77)
                    .unwrap()
                    .generate_many(&[0.5], n)
                    .unwrap()
                    .pop()
                    .unwrap()
            })
            .collect();
        let v = apc_value(apc_accumulate(&streams).unwrap(), n);
        assert!((v - 1.5).abs() < 0.1, "{v}");
    }

    #[test]
    fn apc_never_saturates() {
        // Unlike OR, an APC sum can exceed 1.0 by an arbitrary factor.
        let streams = vec![Bitstream::ones(16); 50];
        let v = apc_value(apc_accumulate(&streams).unwrap(), 16);
        assert_eq!(v, 50.0);
    }

    #[test]
    fn validation() {
        assert!(apc_accumulate(&[]).is_err());
        assert!(apc_accumulate(&[Bitstream::zeros(4), Bitstream::zeros(8)]).is_err());
        assert_eq!(apc_value(5, 0), 0.0);
    }
}
