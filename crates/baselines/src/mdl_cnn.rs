//! MDL-CNN \[32\] — the all-digital time-domain comparator of Table IV.
//!
//! A bidirectional-memory-delay-line CNN engine with 8-bit activations and
//! binarized (1-bit) weights. Anchored to the published numbers scaled to
//! 28 nm, as in the paper.

use crate::BaselineEstimate;

/// Die area at 28 nm, mm² (Table IV).
pub const AREA_MM2: f64 = 0.124;
/// Power, W (Table IV: 0.03 mW).
pub const POWER_W: f64 = 0.03e-3;
/// Clock, Hz (Table IV: 24 MHz).
pub const CLOCK_HZ: f64 = 24e6;
/// Precision: activations/weights.
pub const PRECISION: &str = "8b/1b";

/// Published LeNet-5 conv-layer performance (Table IV, non-accelerated MDL
/// so that no accuracy is sacrificed): 1009 Fr/s, 33.6 MFr/J.
pub fn lenet5_conv() -> BaselineEstimate {
    BaselineEstimate {
        accelerator: "MDL-CNN".to_string(),
        network: "LeNet-5 (conv only)".to_string(),
        frames_per_s: 1009.0,
        frames_per_j: 33.6e6,
    }
}

/// Binarized weights cost accuracy: the paper cites a 1–3 % MNIST drop vs
/// ACOUSTIC's 8-bit weights (§IV-D). Returned as (min, max) percentage
/// points.
pub fn binarization_accuracy_drop_pct() -> (f64, f64) {
    (1.0, 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // published anchor values
    fn anchors_match_table4() {
        let e = lenet5_conv();
        assert_eq!(e.frames_per_s, 1009.0);
        assert_eq!(e.frames_per_j, 33.6e6);
        assert!(AREA_MM2 < 0.2);
    }

    #[test]
    fn implied_energy_is_consistent_with_power() {
        // 1009 Fr/s at 0.03 mW ⇒ ~30 nJ/frame ⇒ ~33.6 MFr/J. The published
        // trio should be self-consistent within rounding.
        let e = lenet5_conv();
        let implied_fpj = e.frames_per_s / POWER_W;
        let ratio = implied_fpj / e.frames_per_j;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
