//! Hand-written ISA programs: assemble Table I instructions, run them on
//! the performance simulator, and inspect the distributed-control overlap
//! (§III-C) — the "programmable accelerator" side of ACOUSTIC that
//! network-specific SC ASICs lack.
//!
//! Run with: `cargo run --release --example assemble`

use acoustic::arch::config::ArchConfig;
use acoustic::arch::perf::PerfSimulator;
use acoustic::arch::program::Program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature layer, written by hand: load weights, then per kernel
    // batch load SNG buffers and run pooled MAC passes while the DMA
    // prefetches the next batch in the background.
    let source = "\
# miniature pooled conv layer: 2 kernel batches x 4 position groups
WGTLD 4096            # first weight batch
BARR DMA
FORK 2
  WGTLD 4096          # prefetch next batch during compute
  WGTRNG 9216
  FORR 4
    ACTRNG 128
    FORP 4            # 2x2 computation-skipped pooling segments
      MAC 64
    ENDP
    BARR MAC|ACTRNG
  ENDR
  BARR DMA|MAC        # batch boundary: compute AND prefetch done
ENDK
CNTST 1024
BARR DMA|MAC|ACTRNG|WGTRNG|CNT
";
    let program = Program::parse(source)?;
    println!("== Assembled program ({} instructions) ==\n", program.len());
    println!("{program}");

    let cfg = ArchConfig::lp();
    let sim = PerfSimulator::new(cfg.clone())?;
    let report = sim.run(&program)?;
    println!(
        "== Simulation on {} @ {:.0} MHz ==",
        cfg.name,
        cfg.clock_hz / 1e6
    );
    println!("total cycles: {}", report.total_cycles);
    println!("latency:      {:.2} µs", report.seconds(&cfg) * 1e6);
    println!("MAC passes:   {}", report.mac_passes);
    println!("DRAM read:    {} bytes", report.dram_read_bytes);
    println!("\nper-module occupancy:");
    for (module, activity) in &report.activity {
        println!(
            "  {module:<8} {:>7} busy cycles ({:>5.1}%), {} instructions",
            activity.busy_cycles,
            100.0 * activity.busy_cycles as f64 / report.total_cycles as f64,
            activity.instructions
        );
    }

    // Execution timeline (traced run): first instructions per module.
    let (_, events) = sim.run_traced(&program)?;
    println!("\n== Execution timeline (first 14 events) ==");
    println!("{:>8} {:>8}  {:<8} instr", "start", "end", "module");
    for e in events.iter().take(14) {
        println!(
            "{:>8} {:>8}  {:<8} {}",
            e.start,
            e.end,
            e.module.to_string(),
            e.label
        );
    }

    // Show that the text format round-trips (the assembler property).
    let reparsed = Program::parse(&program.to_string())?;
    assert_eq!(reparsed, program);
    println!("\nassembler round-trip: OK");
    Ok(())
}
