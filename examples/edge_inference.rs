//! Edge inference end-to-end: train a digit CNN with OR-aware training,
//! run it bit-exactly on the stochastic datapath, and estimate its speed
//! and energy on the ULP accelerator — the paper's motivating use case
//! ("learning at the edge", MNIST-class workloads on milliwatt budgets).
//!
//! Run with: `cargo run --release --example edge_inference`

use acoustic::arch::area::area_breakdown;
use acoustic::arch::config::ArchConfig;
use acoustic::arch::estimate::estimate_conv_only;
use acoustic::arch::power::peak_power_w;
use acoustic::datasets::mnist_like;
use acoustic::nn::layers::{AccumMode, AvgPool2d, Conv2d, Dense, Network, Relu};
use acoustic::nn::train::{evaluate, train, SgdConfig};
use acoustic::nn::zoo::lenet5 as lenet5_shape;
use acoustic::simfunc::{ScSimulator, SimConfig};

fn build_digit_cnn() -> Result<Network, acoustic::nn::NnError> {
    let accum = AccumMode::OrApprox; // ACOUSTIC-style OR-aware training
    let mut net = Network::new();
    net.push_conv(Conv2d::new(1, 8, 3, 1, 1, accum)?);
    net.push_avg_pool(AvgPool2d::new(2)?);
    net.push_relu(Relu::clamped());
    net.push_conv(Conv2d::new(8, 16, 3, 1, 1, accum)?);
    net.push_avg_pool(AvgPool2d::new(2)?);
    net.push_relu(Relu::clamped());
    net.push_flatten();
    net.push_dense(Dense::new(16 * 7 * 7, 10, accum)?);
    Ok(net)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Training a digit CNN with OR-aware training (§II-D) ==");
    let data = mnist_like(600, 150, 42);
    let mut net = build_digit_cnn()?;
    let cfg = SgdConfig {
        lr: 0.08,
        momentum: 0.9,
        batch_size: 16,
    };
    for (i, s) in train(&mut net, &data.train, &cfg, 6)?.iter().enumerate() {
        println!(
            "  epoch {i}: loss {:.3}, train accuracy {:.1}%",
            s.mean_loss,
            100.0 * s.accuracy
        );
    }
    let float_acc = evaluate(&mut net, &data.test)?;
    println!("float test accuracy: {:.1}%", 100.0 * float_acc);

    println!("\n== Bit-exact stochastic inference at two stream lengths ==");
    for stream in [64usize, 128] {
        let sim = ScSimulator::new(SimConfig::with_stream_len(stream)?);
        let acc = sim.evaluate(&net, &data.test)?;
        println!("  {stream:>4}-bit streams: {:.1}% accuracy", 100.0 * acc);
    }

    println!("\n== Deploying on the ULP accelerator (Table IV class) ==");
    let ulp = ArchConfig::ulp();
    let est = estimate_conv_only(&lenet5_shape(), &ulp)?;
    println!(
        "  LeNet-5 conv layers: {:.0} frames/s, {:.1} nJ/frame on-chip",
        est.frames_per_s,
        est.onchip_j * 1e9
    );
    println!(
        "  accelerator: {:.2} mm², {:.2} mW peak at {:.0} MHz",
        area_breakdown(&ulp).total(),
        peak_power_w(&ulp) * 1e3,
        ulp.clock_hz / 1e6
    );
    println!("  per-layer latency:");
    for l in &est.layers {
        println!("    {:8} {:>8} cycles", l.name, l.cycles);
    }
    Ok(())
}
