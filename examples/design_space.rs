//! Design-space exploration with the performance simulator: sweep the
//! compute-engine size and stream length for the CIFAR-10 CNN, the way
//! §III-D parametrises the LP and ULP variants, and print the
//! area/latency/energy trade-off frontier.
//!
//! Run with: `cargo run --release --example design_space`

use acoustic::arch::area::area_breakdown;
use acoustic::arch::config::ArchConfig;
use acoustic::arch::estimate::estimate;
use acoustic::arch::power::peak_power_w;
use acoustic::nn::zoo::cifar10_cnn;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = cifar10_cnn();
    println!(
        "Design-space exploration: {} on ACOUSTIC variants\n",
        net.name()
    );
    println!(
        "{:<22} {:>9} {:>9} {:>10} {:>12} {:>12}",
        "configuration", "area mm2", "power W", "frames/s", "uJ/frame", "frames/J"
    );

    // Sweep rows (kernel parallelism) and stream length around the LP/ULP
    // design points.
    for rows in [4usize, 8, 16, 32] {
        for stream in [128usize, 256, 512] {
            let mut cfg = ArchConfig::lp();
            cfg.name = format!("R={rows} n={stream}");
            cfg.rows = rows;
            cfg.stream_len = stream;
            let est = estimate(&net, &cfg)?;
            println!(
                "{:<22} {:>9.1} {:>9.2} {:>10.0} {:>12.2} {:>12.0}",
                cfg.name,
                area_breakdown(&cfg).total(),
                peak_power_w(&cfg),
                est.frames_per_s,
                est.onchip_j * 1e6,
                est.frames_per_j
            );
        }
    }

    println!("\nReference design points:");
    for cfg in [ArchConfig::lp(), ArchConfig::ulp()] {
        let est = estimate(&net, &cfg)?;
        println!(
            "{:<22} {:>9.2} {:>9.3} {:>10.0} {:>12.2} {:>12.0}",
            cfg.name,
            area_breakdown(&cfg).total(),
            peak_power_w(&cfg),
            est.frames_per_s,
            est.onchip_j * 1e6,
            est.frames_per_j
        );
    }

    println!("\nInterpretation: stream length trades accuracy for latency");
    println!("linearly; engine size trades area/power for throughput until a");
    println!("layer's parallelism is exhausted (utilisation drops).");
    Ok(())
}
