//! Quickstart: the stochastic-computing primitives, bottom-up.
//!
//! Walks through every §II optimization of the paper on small examples:
//! stream generation, AND multiplication, OR accumulation, the split-
//! unipolar two-phase MAC of Fig. 1, and computation-skipping pooling.
//!
//! Run with: `cargo run --release --example quickstart`

use acoustic::core::counter::Phase;
use acoustic::core::pooling::skip_pool_concat;
use acoustic::core::{
    gates, or_accumulate, or_expected, Lfsr, Sng, SngBank, SplitUnipolarMac, SplitWeight,
    UpDownCounter,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2048;

    println!("== 1. Stochastic number generation ==");
    let mut sng = Sng::new(Lfsr::maximal(16, 0xACE1)?, 16);
    let a = sng.generate(0.5, n)?;
    println!("encoded 0.50 as a {n}-bit stream; decoded {:.4}", a.value());

    println!("\n== 2. Single-gate multiplication (AND) ==");
    let mut sng_b = Sng::new(Lfsr::maximal(16, 0x1D2C)?, 16);
    let b = sng_b.generate(0.5, n)?;
    let prod = gates::and_mul(&a, &b)?;
    println!("0.50 x 0.50 = {:.4} (ideal 0.25)", prod.value());

    println!("\n== 3. OR-based scale-free accumulation (§II-B) ==");
    let values = [0.05, 0.1, 0.15, 0.08];
    let streams: Vec<_> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let mut s = Sng::new(Lfsr::maximal(16, 0x2000 + i as u32 * 131).unwrap(), 16);
            s.generate(v, n).unwrap()
        })
        .collect();
    let acc = or_accumulate(&streams)?;
    println!(
        "OR({values:?}) decoded {:.4}; exact OR expectation {:.4}; plain sum {:.4}",
        acc.value(),
        or_expected(&values),
        values.iter().sum::<f64>()
    );

    // Hardware shares one RNG across many SNGs: a bank generates maximally
    // correlated streams from a single LFSR.
    let mut bank = SngBank::new(16, 0x7777)?;
    let shared = bank.generate_many(&[0.25, 0.75], n)?;
    println!(
        "shared-RNG bank: streams of 0.25 / 0.75 decode {:.3} / {:.3}, SCC {:.2}",
        shared[0].value(),
        shared[1].value(),
        shared[0].scc(&shared[1])?
    );

    println!("\n== 4. Split-unipolar two-phase MAC (Fig. 1) ==");
    let weights = vec![SplitWeight::from_real(0.75)?, SplitWeight::from_real(-0.5)?];
    let mac = SplitUnipolarMac::new(n, 96);
    let out = mac.execute(&[0.5, 0.25], &weights, 0xACE1, 0x1D2C)?;
    println!(
        "(0.75 x 0.5) + (-0.5 x 0.25) decoded {:.4} (ideal 0.25, counter {})",
        out.value, out.count
    );

    println!("\n== 5. Computation-skipping average pooling (§II-C) ==");
    let pool_vals = [0.8, 0.4, 0.2, 0.6];
    let short: Vec<_> = pool_vals
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let mut s = Sng::new(Lfsr::maximal(16, 0x3000 + i as u32 * 131).unwrap(), 16);
            s.generate(v, n / 4).unwrap()
        })
        .collect();
    let pooled = skip_pool_concat(&short)?;
    println!(
        "pooled {pool_vals:?} with 4x less computation: {:.4} (ideal mean {:.4})",
        pooled.value(),
        pool_vals.iter().sum::<f64>() / 4.0
    );

    println!("\n== 6. Counter conversion + ReLU (§II-A) ==");
    let mut counter = UpDownCounter::new();
    counter.accumulate(&prod, Phase::Positive)?;
    counter.accumulate(&acc, Phase::Negative)?;
    println!(
        "count {} -> ReLU {} -> value {:.4}",
        counter.count(),
        counter.relu(),
        counter.to_value(n)
    );

    Ok(())
}
