//! Batch serving with the deterministic runtime: train a small digit CNN,
//! prepare it once through the model cache, then serve a batch of images
//! on a worker pool — and show that the results are bit-identical whatever
//! the worker count.
//!
//! Run with: `cargo run --release --example batch_serve`

use acoustic::datasets::mnist_like;
use acoustic::nn::layers::{AccumMode, AvgPool2d, Conv2d, Dense, Network, Relu};
use acoustic::nn::train::{train, SgdConfig};
use acoustic::runtime::{default_workers, BatchEngine, ModelCache};
use acoustic::simfunc::SimConfig;

fn digit_cnn() -> Result<Network, acoustic::nn::NnError> {
    let mut net = Network::new();
    net.push_conv(Conv2d::new(1, 6, 3, 1, 1, AccumMode::OrApprox)?);
    net.push_avg_pool(AvgPool2d::new(2)?);
    net.push_relu(Relu::clamped());
    net.push_flatten();
    net.push_dense(Dense::new(6 * 14 * 14, 10, AccumMode::OrApprox)?);
    Ok(net)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train an OR-aware digit CNN briefly (synthetic MNIST stand-in).
    let data = mnist_like(300, 64, 11);
    let mut net = digit_cnn()?;
    let sgd = SgdConfig {
        lr: 0.08,
        momentum: 0.9,
        batch_size: 16,
    };
    println!(
        "training digit CNN on {} synthetic images...",
        data.train.len()
    );
    train(&mut net, &data.train, &sgd, 3)?;

    // 2. Prepare once, through the serving cache: weights are quantized and
    //    all split-unipolar weight streams generated a single time.
    let cache = ModelCache::new();
    let cfg = SimConfig::with_stream_len(128)?;
    let model = cache.get_or_compile(cfg, &net)?;
    println!(
        "prepared model cached (fingerprint {:#018x}); cache holds {} model(s)\n",
        model.fingerprint(),
        cache.len()
    );

    // A second request for the same (network, config) hits the cache.
    let again = cache.get_or_compile(cfg, &net)?;
    assert!(std::sync::Arc::ptr_eq(&model, &again));

    // 3. Serve the test batch on all available cores.
    let workers = default_workers();
    let report = BatchEngine::new(workers)?.evaluate(&model, &data.test)?;
    println!("{report}");

    // 4. Determinism: a single-threaded run produces bit-identical results.
    let serial = BatchEngine::new(1)?.evaluate(&model, &data.test)?;
    assert_eq!(serial.predictions, report.predictions);
    assert_eq!(serial.confusion, report.confusion);
    println!(
        "determinism check: {} workers vs 1 worker -> identical predictions ✓",
        workers
    );
    Ok(())
}
