//! Network serving end to end: start the acoustic-serve TCP server on an
//! ephemeral port, replay an open-loop load schedule against it, and
//! verify that every accepted response is bit-identical to a direct
//! `BatchEngine` evaluation of the same `(model, request id, image)`
//! triple — the runtime's determinism survives the wire.
//!
//! Run with: `cargo run --release --example batch_serve`

use std::time::Duration;

use acoustic::runtime::{BatchEngine, ModelCache};
use acoustic::serve::{
    demo_model, run_load, summarize, validate_responses, LoadGenConfig, ModelRegistry, ModelSpec,
    ServeConfig, Server, DEMO_MODEL_ID,
};
use acoustic::simfunc::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the demo digit CNN (synthetic MNIST stand-in). Training is
    //    fully deterministic, which is what lets a *separate* process —
    //    here the in-process load generator standing in for one — hold
    //    bit-identical weights for golden validation.
    println!("training demo digit CNN...");
    let (network, data) = demo_model(300, 64, 3)?;
    let images: Vec<_> = data.test.iter().map(|(t, _)| t.clone()).collect();

    // 2. Prepare once through the serving cache and register under an id.
    let cache = std::sync::Arc::new(ModelCache::new());
    let sim = SimConfig::with_stream_len(128)?;
    let golden = cache.get_or_compile(sim, &network)?;
    let registry = ModelRegistry::build(
        vec![ModelSpec {
            id: DEMO_MODEL_ID,
            network,
            cfg: sim,
        }],
        &cache,
    )?;

    // 3. Serve on an ephemeral port: bounded queue (admission control),
    //    micro-batching workers, per-request deadlines.
    let serve_cfg = ServeConfig {
        workers: 2,
        queue_capacity: 32,
        batch_max: 8,
        batch_wait: Duration::from_micros(500),
        default_deadline: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", registry, serve_cfg)?;
    println!("serving model {DEMO_MODEL_ID} on {}\n", handle.addr());

    // 4. Offer an open-loop Poisson schedule and collect every reply.
    let load = LoadGenConfig {
        qps: 120.0,
        requests: 90,
        connections: 3,
        seed: 7,
        ..LoadGenConfig::default()
    };
    let outcome = run_load(handle.addr(), &images, &load)?;
    let report = summarize(&outcome, load.requests);
    println!(
        "offered {} @ {} QPS -> completed {}, overloaded {}, expired {}, dropped {}",
        report.offered,
        load.qps,
        report.completed,
        report.rejected_overload,
        report.deadline_exceeded,
        report.dropped
    );
    println!(
        "latency p50/p95/p99: {}/{}/{} us, goodput {:.1} QPS",
        report.p50_us, report.p95_us, report.p99_us, report.goodput_qps
    );

    // 5. Golden validation: recompute each accepted response locally and
    //    demand f32-bit identity. The request id doubles as the seed
    //    index, so batching, worker count and arrival order cannot change
    //    a single bit of the logits.
    let engine = BatchEngine::new(1)?;
    let mismatches = validate_responses(&outcome, &golden, &engine, &images, &load)?;
    assert_eq!(
        mismatches, 0,
        "server response diverged from direct evaluation"
    );
    println!(
        "\ndeterminism check: {} responses bit-identical to direct BatchEngine evaluation ✓",
        report.completed
    );

    let stats = handle.shutdown();
    println!(
        "server stats: {} micro-batches, mean size {:.2}, mean queue wait {:.2} ms, mean service {:.2} ms",
        stats.batches,
        stats.mean_batch_size(),
        stats.mean_queue_wait_ms(),
        stats.mean_service_ms()
    );
    Ok(())
}
