//! Cross-crate integration tests: the full pipeline from training through
//! stochastic functional simulation to architecture estimation.

use acoustic::arch::compile::compile;
use acoustic::arch::config::ArchConfig;
use acoustic::arch::estimate::estimate;
use acoustic::arch::perf::PerfSimulator;
use acoustic::datasets::mnist_like;
use acoustic::nn::layers::{AccumMode, AvgPool2d, Conv2d, Dense, Network, Relu};
use acoustic::nn::train::{evaluate, train, SgdConfig};
use acoustic::nn::zoo;
use acoustic::simfunc::{ScSimulator, SimConfig};

fn small_digit_net(accum: AccumMode) -> Network {
    let mut net = Network::new();
    net.push_conv(Conv2d::new(1, 6, 3, 1, 1, accum).unwrap());
    net.push_avg_pool(AvgPool2d::new(2).unwrap());
    net.push_relu(Relu::clamped());
    net.push_flatten();
    net.push_dense(Dense::new(6 * 14 * 14, 10, accum).unwrap());
    net
}

#[test]
fn train_then_stochastic_inference_tracks_float_accuracy() {
    // Train a small OR-aware CNN, then check the bit-level stochastic
    // simulation reaches comparable accuracy — the Table II mechanism.
    let data = mnist_like(400, 100, 7);
    let mut net = small_digit_net(AccumMode::OrApprox);
    let cfg = SgdConfig {
        lr: 0.1,
        momentum: 0.9,
        batch_size: 16,
    };
    train(&mut net, &data.train, &cfg, 5).unwrap();
    let float_acc = evaluate(&mut net, &data.test).unwrap();
    assert!(float_acc > 0.5, "float accuracy only {float_acc}");

    let sim = ScSimulator::new(SimConfig::with_stream_len(128).unwrap());
    let sc_acc = sim.evaluate(&net, &data.test).unwrap();
    assert!(
        sc_acc > float_acc - 0.2,
        "SC accuracy {sc_acc} fell too far below float {float_acc}"
    );
}

#[test]
fn longer_streams_close_the_accuracy_gap() {
    // The paper's stream-length story: SC accuracy approaches the trained
    // model as streams lengthen (Table II: 512 beats 256).
    let data = mnist_like(300, 80, 11);
    let mut net = small_digit_net(AccumMode::OrApprox);
    let cfg = SgdConfig {
        lr: 0.1,
        momentum: 0.9,
        batch_size: 16,
    };
    train(&mut net, &data.train, &cfg, 5).unwrap();
    let float_acc = evaluate(&mut net, &data.test).unwrap();

    let acc_at = |stream: usize| {
        ScSimulator::new(SimConfig::with_stream_len(stream).unwrap())
            .evaluate(&net, &data.test)
            .unwrap()
    };
    let short = acc_at(32);
    let long = acc_at(256);
    // Longer streams may only help (within noise of a small test set).
    assert!(
        long >= short - 0.05,
        "long-stream accuracy {long} worse than short {short}"
    );
    assert!(
        (float_acc - long).abs() <= 0.15,
        "long-stream {long} vs float {float_acc}"
    );
}

#[test]
fn whole_zoo_compiles_and_estimates_on_lp() {
    let cfg = ArchConfig::lp();
    for net in [
        zoo::lenet5(),
        zoo::cifar10_cnn(),
        zoo::svhn_cnn(),
        zoo::alexnet(),
        zoo::vgg16(),
        zoo::resnet18(),
    ] {
        let est = estimate(&net, &cfg)
            .unwrap_or_else(|e| panic!("{} failed to estimate: {e}", net.name()));
        assert!(est.frames_per_s > 0.0);
        assert!(est.onchip_j > 0.0);
        assert_eq!(est.layers.len(), net.layers().len());
    }
}

#[test]
fn compiled_programs_roundtrip_and_simulate_on_both_variants() {
    for cfg in [ArchConfig::lp(), ArchConfig::ulp()] {
        let compiled = compile(&zoo::lenet5(), &cfg).unwrap();
        let program = compiled.to_program().unwrap();
        let reparsed = acoustic::arch::program::Program::parse(&program.to_string()).unwrap();
        assert_eq!(reparsed, program);
        let report = PerfSimulator::new(cfg.clone())
            .unwrap()
            .run(&program)
            .unwrap();
        assert!(report.total_cycles > 0);
    }
}

#[test]
fn lp_dominates_ulp_in_speed_ulp_in_area() {
    let net = zoo::cifar10_cnn();
    let lp_est = estimate(&net, &ArchConfig::lp()).unwrap();
    let ulp_est = estimate(&net, &ArchConfig::ulp()).unwrap();
    assert!(lp_est.frames_per_s > ulp_est.frames_per_s);
    let lp_area = acoustic::arch::area::area_breakdown(&ArchConfig::lp()).total();
    let ulp_area = acoustic::arch::area::area_breakdown(&ArchConfig::ulp()).total();
    assert!(ulp_area < lp_area / 20.0);
}

#[test]
fn fixed_point_baseline_beats_chance_after_quantization() {
    let data = mnist_like(400, 100, 13);
    let mut net = small_digit_net(AccumMode::Linear);
    let cfg = SgdConfig {
        lr: 0.1,
        momentum: 0.9,
        batch_size: 16,
    };
    train(&mut net, &data.train, &cfg, 5).unwrap();
    // Quantize to 8 bits, as the Table II baseline does.
    let q = acoustic::nn::fixedpoint::Quantizer::signed_unit(8).unwrap();
    for layer in net.layers_mut() {
        match layer {
            acoustic::nn::layers::NetLayer::Conv(c) => {
                c.weights_mut()
                    .iter_mut()
                    .for_each(|w| *w = q.quantize_value(*w));
            }
            acoustic::nn::layers::NetLayer::Dense(d) => {
                d.weights_mut()
                    .iter_mut()
                    .for_each(|w| *w = q.quantize_value(*w));
            }
            _ => {}
        }
    }
    let acc = evaluate(&mut net, &data.test).unwrap();
    assert!(acc > 0.5, "8-bit accuracy only {acc}");
}
