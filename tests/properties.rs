//! Property-based tests over the cross-crate invariants listed in
//! DESIGN.md §7.

use proptest::prelude::*;

use acoustic::core::counter::Phase;
use acoustic::core::pooling::skip_pool_concat;
use acoustic::core::{
    or_accumulate, or_expected, Bitstream, Lfsr, Sng, SplitUnipolarMac, SplitWeight,
    UpDownCounter,
};
use acoustic::nn::fixedpoint::Quantizer;

fn arb_bits(len: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_value_in_unit_interval(bits in arb_bits(128)) {
        let s = Bitstream::from_bits(&bits);
        prop_assert!((0.0..=1.0).contains(&s.value()));
    }

    #[test]
    fn and_popcount_bounded_by_min(a in arb_bits(96), b in arb_bits(96)) {
        let sa = Bitstream::from_bits(&a);
        let sb = Bitstream::from_bits(&b);
        let p = sa.and(&sb).unwrap();
        prop_assert!(p.count_ones() <= sa.count_ones().min(sb.count_ones()));
    }

    #[test]
    fn or_popcount_bounds(a in arb_bits(96), b in arb_bits(96)) {
        let sa = Bitstream::from_bits(&a);
        let sb = Bitstream::from_bits(&b);
        let o = sa.or(&sb).unwrap();
        prop_assert!(o.count_ones() >= sa.count_ones().max(sb.count_ones()));
        prop_assert!(o.count_ones() <= sa.count_ones() + sb.count_ones());
    }

    #[test]
    fn de_morgan_holds(a in arb_bits(80), b in arb_bits(80)) {
        let sa = Bitstream::from_bits(&a);
        let sb = Bitstream::from_bits(&b);
        let lhs = sa.or(&sb).unwrap().not();
        let rhs = sa.not().and(&sb.not()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn sng_expectation_bounded_by_hoeffding(v in 0.0f64..=1.0, seed in 1u32..0xFFFF) {
        let n = 4096;
        let mut sng = Sng::new(Lfsr::maximal(16, seed).unwrap(), 16);
        let s = sng.generate(v, n).unwrap();
        // Very loose Hoeffding-style bound; LFSR correlation respects it.
        prop_assert!((s.value() - v).abs() < 0.12, "v={} got {}", v, s.value());
    }

    #[test]
    fn or_accumulate_order_invariant(
        a in arb_bits(64), b in arb_bits(64), c in arb_bits(64)
    ) {
        let (sa, sb, sc) = (
            Bitstream::from_bits(&a),
            Bitstream::from_bits(&b),
            Bitstream::from_bits(&c),
        );
        let abc = or_accumulate(&[sa.clone(), sb.clone(), sc.clone()]).unwrap();
        let cba = or_accumulate(&[sc, sb, sa]).unwrap();
        prop_assert_eq!(abc, cba);
    }

    #[test]
    fn or_expected_bounds(values in proptest::collection::vec(0.0f64..=1.0, 1..32)) {
        let e = or_expected(&values);
        let max_v = values.iter().copied().fold(0.0, f64::max);
        let sum: f64 = values.iter().sum();
        prop_assert!(e >= max_v - 1e-12);
        prop_assert!(e <= sum.min(1.0) + 1e-12);
    }

    #[test]
    fn split_weight_roundtrip(w in -1.0f64..=1.0) {
        let sw = SplitWeight::from_real(w).unwrap();
        prop_assert!((sw.to_real() - w).abs() < 1e-12);
        prop_assert!(sw.positive() >= 0.0 && sw.negative() >= 0.0);
        prop_assert!(sw.positive() == 0.0 || sw.negative() == 0.0);
    }

    #[test]
    fn counter_magnitude_bounded_by_bits_seen(bits in arb_bits(64), up in any::<bool>()) {
        let mut c = UpDownCounter::new();
        let s = Bitstream::from_bits(&bits);
        let phase = if up { Phase::Positive } else { Phase::Negative };
        c.accumulate(&s, phase).unwrap();
        prop_assert!(c.count().unsigned_abs() <= c.bits_seen());
        prop_assert!(c.relu() >= 0);
    }

    #[test]
    fn skip_pool_value_is_exact_mean(segments in proptest::collection::vec(arb_bits(32), 1..6)) {
        let streams: Vec<Bitstream> = segments.iter().map(|b| Bitstream::from_bits(b)).collect();
        let mean = streams.iter().map(Bitstream::value).sum::<f64>() / streams.len() as f64;
        let pooled = skip_pool_concat(&streams).unwrap();
        prop_assert!((pooled.value() - mean).abs() < 1e-9);
    }

    #[test]
    fn mac_expected_value_bounded(
        acts in proptest::collection::vec(0.0f64..=1.0, 1..12),
        raw_w in proptest::collection::vec(-1.0f64..=1.0, 1..12)
    ) {
        let n = acts.len().min(raw_w.len());
        let weights: Vec<SplitWeight> = raw_w[..n]
            .iter()
            .map(|&w| SplitWeight::from_real(w).unwrap())
            .collect();
        let mac = SplitUnipolarMac::new(64, 96);
        let e = mac.expected_value(&acts[..n], &weights).unwrap();
        // One OR group per phase: each phase contributes at most 1.0.
        prop_assert!((-1.0..=1.0).contains(&e), "expected value {}", e);
    }

    #[test]
    fn quantizer_error_bounded_and_idempotent(v in -1.0f32..=1.0, bits in 2u32..=10) {
        let q = Quantizer::signed_unit(bits).unwrap();
        let qv = q.quantize_value(v);
        prop_assert!((qv - v).abs() <= q.step() / 2.0 + 1e-6);
        prop_assert_eq!(q.quantize_value(qv), qv);
    }

    #[test]
    fn assembler_roundtrip_random_programs(
        macs in proptest::collection::vec(1u64..10_000, 1..20),
        loop_count in 1u32..50
    ) {
        use acoustic::arch::isa::{Instruction, LoopKind, Module, ModuleMask};
        use acoustic::arch::program::Program;
        let mut instrs = vec![Instruction::For { kind: LoopKind::Row, count: loop_count }];
        for &m in &macs {
            instrs.push(Instruction::Mac { cycles: m });
        }
        instrs.push(Instruction::Barr {
            mask: ModuleMask::empty().with(Module::Mac),
        });
        instrs.push(Instruction::End { kind: LoopKind::Row });
        let p = Program::new(instrs).unwrap();
        let back = Program::parse(&p.to_string()).unwrap();
        prop_assert_eq!(back, p);
    }
}
