//! Property-style tests over the cross-crate invariants listed in
//! DESIGN.md §7.
//!
//! Formerly written against the external `proptest` crate; the repo now
//! builds fully offline, so each property is exercised over a deterministic
//! [`DetRng`]-driven sample sweep instead of a shrinking random search. The
//! invariants themselves are unchanged.

use acoustic::core::counter::Phase;
use acoustic::core::pooling::skip_pool_concat;
use acoustic::core::{
    or_accumulate, or_expected, Bitstream, DetRng, Lfsr, Sng, SplitUnipolarMac, SplitWeight,
    UpDownCounter,
};
use acoustic::nn::fixedpoint::Quantizer;

const CASES: usize = 64;

fn rng(test_tag: u64) -> DetRng {
    DetRng::seed_from_u64(0xAC0_0571C ^ test_tag)
}

fn rand_bits(rng: &mut DetRng, len: usize) -> Vec<bool> {
    (0..len).map(|_| rng.next_bool()).collect()
}

#[test]
fn stream_value_in_unit_interval() {
    let mut r = rng(1);
    for _ in 0..CASES {
        let s = Bitstream::from_bits(&rand_bits(&mut r, 128));
        assert!((0.0..=1.0).contains(&s.value()));
    }
}

#[test]
fn and_popcount_bounded_by_min() {
    let mut r = rng(2);
    for _ in 0..CASES {
        let sa = Bitstream::from_bits(&rand_bits(&mut r, 96));
        let sb = Bitstream::from_bits(&rand_bits(&mut r, 96));
        let p = sa.and(&sb).unwrap();
        assert!(p.count_ones() <= sa.count_ones().min(sb.count_ones()));
    }
}

#[test]
fn or_popcount_bounds() {
    let mut r = rng(3);
    for _ in 0..CASES {
        let sa = Bitstream::from_bits(&rand_bits(&mut r, 96));
        let sb = Bitstream::from_bits(&rand_bits(&mut r, 96));
        let o = sa.or(&sb).unwrap();
        assert!(o.count_ones() >= sa.count_ones().max(sb.count_ones()));
        assert!(o.count_ones() <= sa.count_ones() + sb.count_ones());
    }
}

#[test]
fn de_morgan_holds() {
    let mut r = rng(4);
    for _ in 0..CASES {
        let sa = Bitstream::from_bits(&rand_bits(&mut r, 80));
        let sb = Bitstream::from_bits(&rand_bits(&mut r, 80));
        let lhs = sa.or(&sb).unwrap().not();
        let rhs = sa.not().and(&sb.not()).unwrap();
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn sng_expectation_bounded_by_hoeffding() {
    let mut r = rng(5);
    for _ in 0..CASES {
        let v = r.gen_range_f64(0.0, 1.0);
        let seed = r.gen_range_usize(1, 0xFFFF) as u32;
        let n = 4096;
        let mut sng = Sng::new(Lfsr::maximal(16, seed).unwrap(), 16);
        let s = sng.generate(v, n).unwrap();
        // Very loose Hoeffding-style bound; LFSR correlation respects it.
        assert!((s.value() - v).abs() < 0.12, "v={} got {}", v, s.value());
    }
}

#[test]
fn or_accumulate_order_invariant() {
    let mut r = rng(6);
    for _ in 0..CASES {
        let sa = Bitstream::from_bits(&rand_bits(&mut r, 64));
        let sb = Bitstream::from_bits(&rand_bits(&mut r, 64));
        let sc = Bitstream::from_bits(&rand_bits(&mut r, 64));
        let abc = or_accumulate(&[sa.clone(), sb.clone(), sc.clone()]).unwrap();
        let cba = or_accumulate(&[sc, sb, sa]).unwrap();
        assert_eq!(abc, cba);
    }
}

#[test]
fn or_expected_bounds() {
    let mut r = rng(7);
    for _ in 0..CASES {
        let len = r.gen_range_usize(1, 32);
        let values: Vec<f64> = (0..len).map(|_| r.gen_range_f64(0.0, 1.0)).collect();
        let e = or_expected(&values);
        let max_v = values.iter().copied().fold(0.0, f64::max);
        let sum: f64 = values.iter().sum();
        assert!(e >= max_v - 1e-12);
        assert!(e <= sum.min(1.0) + 1e-12);
    }
}

#[test]
fn split_weight_roundtrip() {
    let mut r = rng(8);
    for _ in 0..CASES {
        let w = r.gen_range_f64(-1.0, 1.0);
        let sw = SplitWeight::from_real(w).unwrap();
        assert!((sw.to_real() - w).abs() < 1e-12);
        assert!(sw.positive() >= 0.0 && sw.negative() >= 0.0);
        assert!(sw.positive() == 0.0 || sw.negative() == 0.0);
    }
}

#[test]
fn counter_magnitude_bounded_by_bits_seen() {
    let mut r = rng(9);
    for _ in 0..CASES {
        let bits = rand_bits(&mut r, 64);
        let up = r.next_bool();
        let mut c = UpDownCounter::new();
        let s = Bitstream::from_bits(&bits);
        let phase = if up { Phase::Positive } else { Phase::Negative };
        c.accumulate(&s, phase).unwrap();
        assert!(c.count().unsigned_abs() <= c.bits_seen());
        assert!(c.relu() >= 0);
    }
}

#[test]
fn skip_pool_value_is_exact_mean() {
    let mut r = rng(10);
    for _ in 0..CASES {
        let k = r.gen_range_usize(1, 6);
        let streams: Vec<Bitstream> = (0..k)
            .map(|_| Bitstream::from_bits(&rand_bits(&mut r, 32)))
            .collect();
        let mean = streams.iter().map(Bitstream::value).sum::<f64>() / streams.len() as f64;
        let pooled = skip_pool_concat(&streams).unwrap();
        assert!((pooled.value() - mean).abs() < 1e-9);
    }
}

#[test]
fn mac_expected_value_bounded() {
    let mut r = rng(11);
    for _ in 0..CASES {
        let na = r.gen_range_usize(1, 12);
        let nw = r.gen_range_usize(1, 12);
        let acts: Vec<f64> = (0..na).map(|_| r.gen_range_f64(0.0, 1.0)).collect();
        let raw_w: Vec<f64> = (0..nw).map(|_| r.gen_range_f64(-1.0, 1.0)).collect();
        let n = acts.len().min(raw_w.len());
        let weights: Vec<SplitWeight> = raw_w[..n]
            .iter()
            .map(|&w| SplitWeight::from_real(w).unwrap())
            .collect();
        let mac = SplitUnipolarMac::new(64, 96);
        let e = mac.expected_value(&acts[..n], &weights).unwrap();
        // One OR group per phase: each phase contributes at most 1.0.
        assert!((-1.0..=1.0).contains(&e), "expected value {}", e);
    }
}

#[test]
fn quantizer_error_bounded_and_idempotent() {
    let mut r = rng(12);
    for _ in 0..CASES {
        let v = r.gen_range_f32(-1.0, 1.0);
        let bits = r.gen_range_usize(2, 11) as u32;
        let q = Quantizer::signed_unit(bits).unwrap();
        let qv = q.quantize_value(v);
        assert!((qv - v).abs() <= q.step() / 2.0 + 1e-6);
        assert_eq!(q.quantize_value(qv), qv);
    }
}

#[test]
fn assembler_roundtrip_random_programs() {
    use acoustic::arch::isa::{Instruction, LoopKind, Module, ModuleMask};
    use acoustic::arch::program::Program;
    let mut r = rng(13);
    for _ in 0..CASES {
        let n = r.gen_range_usize(1, 20);
        let macs: Vec<u64> = (0..n)
            .map(|_| r.gen_range_usize(1, 10_000) as u64)
            .collect();
        let loop_count = r.gen_range_usize(1, 50) as u32;
        let mut instrs = vec![Instruction::For {
            kind: LoopKind::Row,
            count: loop_count,
        }];
        for &m in &macs {
            instrs.push(Instruction::Mac { cycles: m });
        }
        instrs.push(Instruction::Barr {
            mask: ModuleMask::empty().with(Module::Mac),
        });
        instrs.push(Instruction::End {
            kind: LoopKind::Row,
        });
        let p = Program::new(instrs).unwrap();
        let back = Program::parse(&p.to_string()).unwrap();
        assert_eq!(back, p);
    }
}
