//! Consistency checks across the three representations of each network:
//! the trainable `Network`, the shape-zoo descriptor, and the compiled
//! ISA program.

use acoustic::arch::compile::compile;
use acoustic::arch::config::ArchConfig;
use acoustic::arch::isa::Module;
use acoustic::arch::perf::PerfSimulator;
use acoustic::nn::zoo::{self, LayerShape, NetworkShape};

fn all_networks() -> Vec<NetworkShape> {
    vec![
        zoo::lenet5(),
        zoo::cifar10_cnn(),
        zoo::svhn_cnn(),
        zoo::alexnet(),
        zoo::vgg16(),
        zoo::resnet18(),
        zoo::googlenet(),
    ]
}

#[test]
fn every_network_compiles_on_both_variants() {
    for cfg in [ArchConfig::lp(), ArchConfig::ulp()] {
        for net in all_networks() {
            let compiled = compile(&net, &cfg)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", net.name(), cfg.name));
            assert_eq!(compiled.layers.len(), net.layers().len());
            assert!(compiled.total_passes() > 0);
        }
    }
}

#[test]
fn compiled_weight_traffic_equals_shape_weights() {
    let cfg = ArchConfig::lp();
    for net in all_networks() {
        let compiled = compile(&net, &cfg).unwrap();
        assert_eq!(
            compiled.total_weight_bytes(),
            net.total_weights(),
            "{}",
            net.name()
        );
    }
}

#[test]
fn mac_busy_cycles_track_passes_exactly() {
    let cfg = ArchConfig::lp();
    let sim = PerfSimulator::new(cfg.clone()).unwrap();
    for net in all_networks() {
        let compiled = compile(&net, &cfg).unwrap();
        let report = sim.run(&compiled.to_program().unwrap()).unwrap();
        assert_eq!(
            report.busy(Module::Mac),
            compiled.total_passes() * cfg.stream_len as u64,
            "{}",
            net.name()
        );
    }
}

#[test]
fn conv_macs_dominate_modern_networks() {
    // §III-B's argument for tolerating bad FC utilisation: modern networks
    // are conv-dominated.
    for net in [zoo::resnet18(), zoo::googlenet(), zoo::vgg16()] {
        let conv_share = net.conv_macs() as f64 / net.total_macs() as f64;
        assert!(
            conv_share > 0.95,
            "{}: conv share only {conv_share}",
            net.name()
        );
    }
    // AlexNet is the counterexample that motivates the batching extension.
    let alex = zoo::alexnet();
    let fc_share = 1.0 - alex.conv_macs() as f64 / alex.total_macs() as f64;
    assert!(fc_share > 0.05);
}

#[test]
fn pooled_layers_shrink_outputs() {
    for net in all_networks() {
        for layer in net.layers() {
            if let LayerShape::Conv {
                out_c,
                out_h,
                out_w,
                pool: Some(_),
                ..
            } = layer
            {
                assert!(
                    layer.output_count() < (out_c * out_h * out_w) as u64,
                    "{}/{} did not shrink",
                    net.name(),
                    layer.name()
                );
            }
        }
    }
}

#[test]
fn peak_memories_are_consistent_with_lp_sizing() {
    // §III-D: the LP activation memory (600 KB) processes "most commonly
    // used CNNs without ever having to offload activations off-chip" —
    // true for every zoo network except VGG-16's giant early feature maps.
    let lp = ArchConfig::lp();
    for net in all_networks() {
        let fits = net.peak_activation_count() <= lp.act_mem_bytes;
        match net.name() {
            "VGG-16" => assert!(!fits, "VGG-16 should exceed 600 KB"),
            "AlexNet" | "GoogLeNet" | "ResNet-18" => { /* borderline; either way */ }
            _ => assert!(fits, "{} should fit 600 KB", net.name()),
        }
    }
}
